//! Property tests for the IR foundations: index-set algebra and the cost
//! polynomial ring.

use proptest::prelude::*;
use tce_ir::{CostPoly, IndexSet, IndexSpace, IndexVar, RangeId};

fn arb_set() -> impl Strategy<Value = IndexSet> {
    // Sets over 12 possible variables.
    (0u64..(1 << 12)).prop_map(IndexSet)
}

proptest! {
    #[test]
    fn set_union_intersection_laws(a in arb_set(), b in arb_set(), c in arb_set()) {
        // Commutativity.
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.inter(b), b.inter(a));
        // Associativity.
        prop_assert_eq!(a.union(b).union(c), a.union(b.union(c)));
        prop_assert_eq!(a.inter(b).inter(c), a.inter(b.inter(c)));
        // Distributivity.
        prop_assert_eq!(a.inter(b.union(c)), a.inter(b).union(a.inter(c)));
        // De Morgan via minus against a universe.
        let u = a.union(b).union(c);
        prop_assert_eq!(u.minus(a.union(b)), u.minus(a).inter(u.minus(b)));
        // Subset laws.
        prop_assert!(a.inter(b).is_subset(a));
        prop_assert!(a.is_subset(a.union(b)));
        prop_assert_eq!(a.minus(b).union(a.inter(b)), a);
    }

    #[test]
    fn set_iteration_roundtrips(a in arb_set()) {
        let rebuilt: IndexSet = a.iter().collect();
        prop_assert_eq!(rebuilt, a);
        prop_assert_eq!(a.iter().count(), a.len());
        // Iteration is strictly increasing.
        let ids: Vec<u8> = a.iter().map(|v| v.0).collect();
        for w in ids.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn subset_enumeration_is_complete(bits in 0u64..(1 << 6)) {
        let a = IndexSet(bits);
        let subs: Vec<IndexSet> = a.subsets().collect();
        prop_assert_eq!(subs.len(), 1 << a.len());
        for s in &subs {
            prop_assert!(s.is_subset(a));
        }
        let mut sorted = subs.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), subs.len());
    }
}

/// A small polynomial built from random monomial terms.
fn arb_poly() -> impl Strategy<Value = CostPoly> {
    proptest::collection::vec(
        (0u16..3, 0u16..3, -4i32..5),
        0..4,
    )
    .prop_map(|terms| {
        let mut p = CostPoly::zero();
        for (e0, e1, c) in terms {
            let m = CostPoly::range_pow(RangeId(0), e0)
                .mul(&CostPoly::range_pow(RangeId(1), e1))
                .scale(c as f64);
            p.add_assign(&m);
        }
        p
    })
}

fn eval_space() -> IndexSpace {
    let mut sp = IndexSpace::new();
    sp.add_range("A", 3);
    sp.add_range("B", 5);
    sp
}

proptest! {
    #[test]
    fn poly_ring_laws(p in arb_poly(), q in arb_poly(), r in arb_poly()) {
        let sp = eval_space();
        // Commutativity and associativity of + and ·, distribution, via
        // structural equality of the canonical representation.
        prop_assert_eq!(p.add(&q), q.add(&p));
        prop_assert_eq!(p.mul(&q), q.mul(&p));
        prop_assert_eq!(p.add(&q).add(&r), p.add(&q.add(&r)));
        prop_assert_eq!(p.mul(&q).mul(&r), p.mul(&q.mul(&r)));
        prop_assert_eq!(p.mul(&q.add(&r)), p.mul(&q).add(&p.mul(&r)));
        // Evaluation is a ring homomorphism (integer-coefficient inputs
        // keep the arithmetic exact at these sizes).
        prop_assert_eq!(p.add(&q).eval(&sp), p.eval(&sp) + q.eval(&sp));
        prop_assert_eq!(p.mul(&q).eval(&sp), p.eval(&sp) * q.eval(&sp));
    }

    #[test]
    fn poly_identities(p in arb_poly()) {
        let zero = CostPoly::zero();
        let one = CostPoly::constant(1.0);
        prop_assert_eq!(p.add(&zero), p.clone());
        prop_assert_eq!(p.mul(&one), p.clone());
        prop_assert!(p.mul(&zero).is_zero());
        prop_assert!(p.add(&p.scale(-1.0)).is_zero());
        prop_assert_eq!(p.scale(2.0), p.add(&p));
    }
}

#[test]
fn extent_product_respects_multiplicity() {
    let mut sp = IndexSpace::new();
    let a = sp.add_range("A", 7);
    let b = sp.add_range("B", 2);
    let x = sp.add_var("x", a);
    let y = sp.add_var("y", a);
    let z = sp.add_var("z", b);
    let set = IndexSet::from_vars([x, y, z]);
    let p = CostPoly::extent_product(set, &sp);
    assert_eq!(p.eval(&sp), 7.0 * 7.0 * 2.0);
    assert_eq!(p.eval(&sp) as u128, sp.iteration_points(set));
    let _ = IndexVar(0);
}
