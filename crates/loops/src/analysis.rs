//! Static analyses over loop programs: memory, operation counts and
//! distinct-elements-accessed (the primitive of the paper's §6 cost model).

use crate::ir::{ARef, ArrayKind, LoopProgram, Stmt, Sub};
use tce_ir::IndexSpace;

/// Operation counts of a loop program under the current extents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Multiply/add flops performed by `Accum` statements
    /// (`k` flops per iteration for a `k`-operand product: `k−1` multiplies
    /// and one add).
    pub contraction_flops: u128,
    /// Number of primitive-function evaluations.
    pub func_evals: u128,
    /// Flops spent inside primitive functions (`Σ evals · C_i`).
    pub func_flops: u128,
}

impl OpCounts {
    /// Total flops.
    pub fn total(&self) -> u128 {
        self.contraction_flops.saturating_add(self.func_flops)
    }
}

/// Count operations by walking the loop structure.
pub fn op_counts(p: &LoopProgram, space: &IndexSpace) -> OpCounts {
    fn walk(p: &LoopProgram, space: &IndexSpace, stmts: &[Stmt], iters: u128, out: &mut OpCounts) {
        for s in stmts {
            match s {
                Stmt::Loop { var, body } => {
                    let e = p.var(*var).extent(space) as u128;
                    walk(p, space, body, iters.saturating_mul(e), out);
                }
                Stmt::Init { .. } => {}
                Stmt::Accum { rhs, .. } => {
                    out.contraction_flops = out
                        .contraction_flops
                        .saturating_add(iters.saturating_mul(rhs.len().max(2) as u128));
                }
                Stmt::Eval { func, .. } => {
                    out.func_evals = out.func_evals.saturating_add(iters);
                    out.func_flops = out
                        .func_flops
                        .saturating_add(iters.saturating_mul(p.func(*func).cost_per_eval as u128));
                }
            }
        }
    }
    let mut out = OpCounts::default();
    walk(p, space, &p.body, 1, &mut out);
    out
}

/// Per-array storage report.
#[derive(Debug, Clone)]
pub struct MemoryReport {
    /// `(name, elements, kind)` per array, in declaration order.
    pub arrays: Vec<(String, u128, ArrayKind)>,
    /// Sum of elements over intermediates and outputs (the paper's "total
    /// memory for temporaries" metric; inputs are given).
    pub temp_elements: u128,
    /// Sum over inputs.
    pub input_elements: u128,
}

/// Compute the storage report.
pub fn memory_report(p: &LoopProgram, space: &IndexSpace) -> MemoryReport {
    let mut arrays = Vec::with_capacity(p.arrays.len());
    let mut temp = 0u128;
    let mut input = 0u128;
    for a in &p.arrays {
        let elems = a.elements(space);
        match a.kind {
            ArrayKind::Input(_) => input = input.saturating_add(elems),
            ArrayKind::Intermediate | ArrayKind::Output => temp = temp.saturating_add(elems),
            ArrayKind::One => {}
        }
        arrays.push((a.name.clone(), elems, a.kind.clone()));
    }
    MemoryReport {
        arrays,
        temp_elements: temp,
        input_elements: input,
    }
}

/// Number of distinct values a subscript takes while the variables in
/// `varying` iterate (`varying` is indexed by `LoopVarId.0`).
fn sub_span(p: &LoopProgram, space: &IndexSpace, s: &Sub, varying: &[bool]) -> u128 {
    match *s {
        Sub::Var(v) => {
            if varying[v.0 as usize] {
                p.var(v).extent(space) as u128
            } else {
                1
            }
        }
        Sub::Tiled { tile, intra, .. } => {
            let t = if varying[tile.0 as usize] {
                p.var(tile).extent(space) as u128
            } else {
                1
            };
            let i = if varying[intra.0 as usize] {
                p.var(intra).extent(space) as u128
            } else {
                1
            };
            t.saturating_mul(i)
        }
    }
}

/// Distinct array elements accessed while executing `stmts` once, given
/// that the loop variables marked in `varying` run over their full ranges
/// *inside* this scope (outer variables are fixed).  Distinct reference
/// patterns are summed — an upper bound when the same array is referenced
/// through two different patterns in one scope, exact otherwise.  This is
/// the `Accesses` quantity of the paper's data-locality cost model (§6).
pub fn distinct_accesses(
    p: &LoopProgram,
    space: &IndexSpace,
    stmts: &[Stmt],
    varying: &mut [bool],
) -> u128 {
    use std::collections::HashSet;
    fn collect<'a>(
        stmts: &'a [Stmt],
        refs: &mut Vec<&'a ARef>,
        inner: &mut Vec<crate::ir::LoopVarId>,
    ) {
        for s in stmts {
            match s {
                Stmt::Loop { var, body } => {
                    inner.push(*var);
                    collect(body, refs, inner);
                }
                Stmt::Init { .. } => {}
                Stmt::Accum { lhs, rhs, .. } => {
                    refs.push(lhs);
                    refs.extend(rhs.iter());
                }
                Stmt::Eval { lhs, .. } => refs.push(lhs),
            }
        }
    }
    let mut refs = Vec::new();
    let mut inner = Vec::new();
    collect(stmts, &mut refs, &mut inner);
    for &v in &inner {
        varying[v.0 as usize] = true;
    }
    let mut seen: HashSet<(u32, Vec<Sub>)> = HashSet::new();
    let mut total = 0u128;
    for r in refs {
        if seen.insert((r.array.0, r.subs.clone())) {
            let mut n = 1u128;
            for s in &r.subs {
                n = n.saturating_mul(sub_span(p, space, s, varying));
            }
            total = total.saturating_add(n);
        }
    }
    for &v in &inner {
        varying[v.0 as usize] = false;
    }
    total
}

/// Convenience wrapper: distinct accesses of a whole program (all loops
/// varying).
pub fn total_distinct_accesses(p: &LoopProgram, space: &IndexSpace) -> u128 {
    let mut varying = vec![false; p.vars.len()];
    distinct_accesses(p, space, &p.body, &mut varying)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::unfused_program;
    use tce_ir::{IndexSet, OpTree, TensorDecl, TensorTable};

    fn fig1(next: usize) -> (IndexSpace, TensorTable, OpTree) {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", next);
        let vs = space.add_vars("a b c d e f i j k l", n);
        let (a, b, c, d, e, f, i, j, k, l) = (
            vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6], vs[7], vs[8], vs[9],
        );
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n; 4]));
        let tb = tensors.add(TensorDecl::dense("B", vec![n; 4]));
        let tc = tensors.add(TensorDecl::dense("C", vec![n; 4]));
        let td = tensors.add(TensorDecl::dense("D", vec![n; 4]));
        let mut tree = OpTree::new();
        let lb = tree.leaf_input(tb, vec![b, e, f, l]);
        let ld = tree.leaf_input(td, vec![c, d, e, l]);
        let t1 = tree.contract(lb, ld, IndexSet::from_vars([b, c, d, f]));
        let lc = tree.leaf_input(tc, vec![d, f, j, k]);
        let t2 = tree.contract(t1, lc, IndexSet::from_vars([b, c, j, k]));
        let la = tree.leaf_input(ta, vec![a, c, i, k]);
        tree.contract(t2, la, IndexSet::from_vars([a, b, i, j]));
        (space, tensors, tree)
    }

    #[test]
    fn op_counts_match_tree_model() {
        // Unfused program flops must equal the operator-tree cost: 6·N^6.
        let (space, tensors, tree) = fig1(5);
        let built = unfused_program(&tree, &space, &tensors, "S");
        let ops = op_counts(&built.program, &space);
        assert_eq!(ops.contraction_flops, 6 * 5u128.pow(6));
        assert_eq!(ops.contraction_flops, tree.total_ops(&space));
        assert_eq!(ops.func_evals, 0);
    }

    #[test]
    fn memory_report_totals() {
        let (space, tensors, tree) = fig1(4);
        let built = unfused_program(&tree, &space, &tensors, "S");
        let mem = memory_report(&built.program, &space);
        // T1, T2, S at N^4 each; inputs 4·N^4.
        assert_eq!(mem.temp_elements, 3 * 256);
        assert_eq!(mem.input_elements, 4 * 256);
        assert_eq!(mem.arrays.len(), 7);
    }

    #[test]
    fn func_eval_counting() {
        let mut space = IndexSpace::new();
        let n = space.add_range("V", 6);
        let c = space.add_var("c", n);
        let e = space.add_var("e", n);
        let tensors = TensorTable::new();
        let mut tree = OpTree::new();
        let f1 = tree.leaf_func("f1", vec![c, e], 1000);
        let f2 = tree.leaf_func("f2", vec![c, e], 500);
        tree.contract(f1, f2, IndexSet::EMPTY);
        let built = unfused_program(&tree, &space, &tensors, "E");
        let ops = op_counts(&built.program, &space);
        assert_eq!(ops.func_evals, 2 * 36);
        assert_eq!(ops.func_flops, 36 * 1000 + 36 * 500);
        assert_eq!(ops.contraction_flops, 2 * 36);
        assert_eq!(ops.total(), 36 * 1500 + 72);
    }

    #[test]
    fn distinct_accesses_full_program() {
        let (space, tensors, tree) = fig1(3);
        let built = unfused_program(&tree, &space, &tensors, "S");
        let n4 = 81u128;
        // Nest 1 touches T1, B, D; nest 2 T2, T1, C; nest 3 S, T2, A.
        // T1 and T2 recur with identical reference patterns and are counted
        // once: 7 distinct patterns of N^4 elements each.
        assert_eq!(total_distinct_accesses(&built.program, &space), 7 * n4);
    }

    #[test]
    fn distinct_accesses_respects_fixed_outer_vars() {
        // For the T1 production nest alone with b,c fixed (varying only
        // d,e,f,l): T1[b,c,d,f] spans N^2, B[b,e,f,l] N^3, D[c,d,e,l] N^3.
        let (space, tensors, tree) = fig1(3);
        let built = unfused_program(&tree, &space, &tensors, "S");
        // body[1] is the T1 nest: for b { for c { for d … } } — descend two
        // levels so b, c stay fixed.
        let nest = &built.program.body[1];
        let inner2 = match nest {
            Stmt::Loop { body, .. } => match &body[0] {
                Stmt::Loop { body, .. } => body,
                _ => panic!(),
            },
            _ => panic!(),
        };
        let mut varying = vec![false; built.program.vars.len()];
        let got = distinct_accesses(&built.program, &space, inner2, &mut varying);
        assert_eq!(got, 9 + 27 + 27);
        // The helper restores `varying`.
        assert!(varying.iter().all(|&b| !b));
    }

    #[test]
    fn sub_span_tiled() {
        use crate::ir::*;
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 8);
        let a = space.add_var("a", n);
        let mut p = LoopProgram::new();
        let at = p.add_var("a_t", VarRange::Tile { index: a, block: 4 });
        let ai = p.add_var("a_i", VarRange::Intra { index: a, block: 4 });
        let arr = p.add_array("X", vec![VarRange::Full(a)], ArrayKind::Intermediate);
        let sub = Sub::Tiled {
            tile: at,
            intra: ai,
            block: 4,
        };
        let mk = |t: bool, i: bool| {
            let mut v = vec![false; 2];
            v[at.0 as usize] = t;
            v[ai.0 as usize] = i;
            v
        };
        let _ = arr;
        assert_eq!(sub_span(&p, &space, &sub, &mk(true, true)), 8);
        assert_eq!(sub_span(&p, &space, &sub, &mk(false, true)), 4);
        assert_eq!(sub_span(&p, &space, &sub, &mk(true, false)), 2);
        assert_eq!(sub_span(&p, &space, &sub, &mk(false, false)), 1);
    }
}
