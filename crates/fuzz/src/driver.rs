//! Campaign driver: generate → check → (on failure) shrink → emit repro.
//!
//! Case `i` of a campaign is seeded with `case_seed(seed, i)`, a stateless
//! splitmix64 mix — so the expression stream is a pure function of the
//! campaign seed and the case index, independent of the budget (running
//! 10 cases or 10 000 cases produces the same first 10 programs).

use std::path::{Path, PathBuf};

use tce_ir::rng::{split_seed, Rng};
use tce_ir::Program;

use crate::checks::{check_program_caught, CaseStats, CheckConfig, CheckKind};
use crate::gen::{gen_program, GenConfig};
use crate::shrink::{max_operands, shrink};

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Campaign seed.
    pub seed: u64,
    /// Number of cases to generate and check.
    pub budget: usize,
    /// Generator shape.
    pub gen: GenConfig,
    /// Invariants and their parameters.
    pub check: CheckConfig,
    /// Where minimized repro files are written (`None` = don't write).
    pub repro_dir: Option<PathBuf>,
    /// Where every generated case is archived as `.tce` source (`None` =
    /// don't archive).  Used by CI to upload the corpus as an artifact.
    pub corpus_dir: Option<PathBuf>,
    /// Candidate budget for the shrinker, per failure.
    pub max_shrink_attempts: usize,
    /// Stop the campaign after this many failures.
    pub max_failures: usize,
}

impl FuzzConfig {
    /// Default campaign for `seed`/`budget`: smoke generator, all checks.
    pub fn new(seed: u64, budget: usize) -> Self {
        Self {
            seed,
            budget,
            gen: GenConfig::smoke(),
            check: CheckConfig::default(),
            repro_dir: None,
            corpus_dir: None,
            max_shrink_attempts: 400,
            max_failures: 5,
        }
    }
}

/// One failing case, with its minimized form.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Case index within the campaign.
    pub case: usize,
    /// Per-case seed (`case_seed(campaign_seed, case)`).
    pub case_seed: u64,
    /// Failed invariant family.
    pub kind: CheckKind,
    /// Divergence description from the original failure.
    pub detail: String,
    /// The generated program, unparsed.
    pub original_src: String,
    /// The minimized program, unparsed.
    pub shrunk_src: String,
    /// Operand count of the minimized repro.
    pub shrunk_operands: usize,
    /// Accepted shrink steps.
    pub shrink_steps: usize,
    /// Where the repro file was written, when a repro dir was configured.
    pub repro_path: Option<PathBuf>,
}

/// Aggregate campaign outcome.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Cases generated and checked.
    pub cases: usize,
    /// Coverage totals over passing cases.
    pub stats: CaseStats,
    /// Every failure, in case order.
    pub failures: Vec<CaseFailure>,
}

impl CampaignReport {
    /// True when every case passed every configured invariant.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The per-case seed: budget-independent and decorrelated across cases.
pub fn case_seed(campaign_seed: u64, case: usize) -> u64 {
    split_seed(campaign_seed ^ split_seed(case as u64 + 1))
}

/// Generate the `case`-th program of a campaign.
pub fn gen_case(campaign_seed: u64, case: usize, gen: &GenConfig) -> Program {
    gen_program(&mut Rng::new(case_seed(campaign_seed, case)), gen)
}

/// Self-contained repro source: `#` metadata header (ignored by the
/// lexer) followed by the minimized program, directly loadable by `tce`
/// and re-checkable by `tce-fuzz`.
pub fn repro_source(failure: &CaseFailure, campaign_seed: u64) -> String {
    format!(
        "# tce-fuzz repro\n\
         # campaign seed : {campaign_seed:#x}\n\
         # case          : {} (case seed {:#x})\n\
         # failed check  : {}\n\
         # detail        : {}\n\
         # shrink        : {} steps, {} operands in minimized form\n\
         {}",
        failure.case,
        failure.case_seed,
        failure.kind,
        failure.detail.replace('\n', " "),
        failure.shrink_steps,
        failure.shrunk_operands,
        failure.shrunk_src,
    )
}

fn write_file(dir: &Path, name: &str, contents: &str) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(name);
    std::fs::write(&path, contents).ok()?;
    Some(path)
}

/// Run a whole campaign.  `progress` is called after every case with
/// `(case_index, failed_so_far)`.
pub fn run_campaign_with(
    cfg: &FuzzConfig,
    mut progress: impl FnMut(usize, usize),
) -> CampaignReport {
    let mut report = CampaignReport {
        cases: 0,
        stats: CaseStats::default(),
        failures: Vec::new(),
    };
    for case in 0..cfg.budget {
        let seed = case_seed(cfg.seed, case);
        let program = gen_program(&mut Rng::new(seed), &cfg.gen);
        // Vary the data per case, deterministically.
        let mut check = cfg.check.clone();
        check.data_seed = split_seed(check.data_seed ^ seed);
        if let Some(dir) = &cfg.corpus_dir {
            write_file(
                dir,
                &format!("case_{case:05}.tce"),
                &tce_lang::unparse(&program),
            );
        }
        report.cases += 1;
        match check_program_caught(&program, &check) {
            Ok(stats) => report.stats.add(&stats),
            Err(f) => {
                let minimized = shrink(&program, f.kind, &check, cfg.max_shrink_attempts);
                let mut failure = CaseFailure {
                    case,
                    case_seed: seed,
                    kind: f.kind,
                    detail: f.detail,
                    original_src: tce_lang::unparse(&program),
                    shrunk_src: tce_lang::unparse(&minimized.program),
                    shrunk_operands: max_operands(&minimized.program),
                    shrink_steps: minimized.steps,
                    repro_path: None,
                };
                if let Some(dir) = &cfg.repro_dir {
                    let text = repro_source(&failure, cfg.seed);
                    failure.repro_path =
                        write_file(dir, &format!("repro_case_{case:05}.tce"), &text);
                }
                report.failures.push(failure);
                if report.failures.len() >= cfg.max_failures {
                    break;
                }
            }
        }
        progress(case, report.failures.len());
    }
    report
}

/// [`run_campaign_with`] without a progress callback.
pub fn run_campaign(cfg: &FuzzConfig) -> CampaignReport {
    run_campaign_with(cfg, |_, _| {})
}
