//! Simulated distributed-memory machine.
//!
//! Validates the §7 models against a literal simulation: ownership is
//! materialized element by element ([`move_cost_elementwise`] must agree
//! with the closed-form [`crate::cost::move_cost`]), and a contraction is
//! executed processor by processor over its γ-local iteration subspace
//! with explicit partial-sum combination ([`simulate_contraction`] must
//! agree with the sequential kernel).  This substitutes for the parallel
//! machine the paper assumes (see DESIGN.md "Substitutions"): the cost
//! model predicts communication volume and per-processor work, and this
//! module is the ground truth those predictions are checked against.

use crate::error::DistError;
use crate::tuple::{DistEntry, DistTuple};
use std::collections::HashSet;
use tce_ir::{IndexSet, IndexSpace, IndexVar};
use tce_par::ProcessorGrid;
use tce_tensor::Tensor;

/// Element-by-element redistribution count: for every processor, enumerate
/// the element multi-indices it needs under `alpha` and subtract those it
/// holds under `beta`.  Exponential in array size — use at test extents.
pub fn move_cost_elementwise(
    dims: &[IndexVar],
    space: &IndexSpace,
    grid: &ProcessorGrid,
    beta: &DistTuple,
    alpha: &DistTuple,
) -> u128 {
    let set = IndexSet::from_vars(dims.iter().copied());
    let shape: Vec<usize> = dims.iter().map(|&v| space.extent(v)).collect();
    let total: usize = shape.iter().product::<usize>().max(1);
    let mut count = 0u128;
    for id in grid.processors() {
        let z = grid.coords(id);
        let owned_set = |tup: &DistTuple| -> HashSet<Vec<usize>> {
            let mut out = HashSet::new();
            if !tup.holds(set, &z) {
                return out;
            }
            let mut idx = vec![0usize; dims.len()];
            for _ in 0..total {
                let mine = dims
                    .iter()
                    .zip(&idx)
                    .all(|(&v, &i)| tup.owned_range(v, space, grid, &z).contains(&i));
                if mine {
                    out.insert(idx.clone());
                }
                Tensor::advance(&mut idx, &shape);
            }
            out
        };
        let need = owned_set(alpha);
        let have = owned_set(beta);
        count += need.difference(&have).count() as u128;
    }
    count
}

/// Statistics from a simulated distributed contraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Maximum multiply-add iterations executed by any processor.
    pub max_local_iterations: u128,
    /// Total iterations across processors (≥ the sequential count when
    /// replication recomputes).
    pub total_iterations: u128,
    /// Number of processors that produced a counted (representative)
    /// partial result.
    pub representatives: usize,
}

/// Execute `out[o…] (+)= Σ a·b` on the simulated grid under the loop-space
/// distribution `gamma`: every processor runs its γ-local iteration
/// subspace; partial results from *representative* processors (coordinate
/// 0 along every non-distributed grid dimension) are summed, mirroring the
/// combine step.  Returns the assembled global result.
#[allow(clippy::too_many_arguments)]
pub fn simulate_contraction(
    a_dims: &[IndexVar],
    b_dims: &[IndexVar],
    out_dims: &[IndexVar],
    space: &IndexSpace,
    grid: &ProcessorGrid,
    gamma: &DistTuple,
    a: &Tensor,
    b: &Tensor,
) -> (Tensor, SimStats) {
    let loops: Vec<IndexVar> = {
        let sa = IndexSet::from_vars(a_dims.iter().copied());
        let sb = IndexSet::from_vars(b_dims.iter().copied());
        sa.union(sb).iter().collect()
    };
    let out_shape: Vec<usize> = out_dims.iter().map(|&v| space.extent(v)).collect();
    let mut result = Tensor::zeros(&out_shape);
    let mut stats = SimStats::default();

    // A grid dim is "covering" when it distributes one of the loop
    // variables; along every other dim only coordinate 0 is
    // representative (others would duplicate the same work).
    let covering: Vec<bool> = gamma
        .0
        .iter()
        .map(|e| matches!(e, DistEntry::Idx(v) if loops.contains(v)))
        .collect();

    for id in grid.processors() {
        let z = grid.coords(id);
        let representative = z.iter().zip(&covering).all(|(&zd, &cov)| cov || zd == 0);
        // Local iteration ranges per loop variable.
        let ranges: Vec<std::ops::Range<usize>> = loops
            .iter()
            .map(|&v| gamma.owned_range(v, space, grid, &z))
            .collect();
        let local_points: u128 = ranges.iter().map(|r| r.len() as u128).product();
        stats.max_local_iterations = stats.max_local_iterations.max(local_points);
        stats.total_iterations += local_points;
        if !representative || local_points == 0 {
            continue;
        }
        stats.representatives += 1;

        // Odometer over the local subspace.
        let mut idx: Vec<usize> = ranges.iter().map(|r| r.start).collect();
        let pos = |dims: &[IndexVar], idx: &[usize]| -> Vec<usize> {
            dims.iter()
                .map(|v| {
                    let p = loops.iter().position(|l| l == v).expect("dim in loops");
                    idx[p]
                })
                .collect()
        };
        'outer: loop {
            let va = a.get(&pos(a_dims, &idx));
            let vb = b.get(&pos(b_dims, &idx));
            result.add_assign_at(&pos(out_dims, &idx), va * vb);
            // Advance within ranges.
            for d in (0..loops.len()).rev() {
                idx[d] += 1;
                if idx[d] < ranges[d].end {
                    continue 'outer;
                }
                idx[d] = ranges[d].start;
                if d == 0 {
                    break 'outer;
                }
            }
            if loops.is_empty() {
                break;
            }
        }
    }
    (result, stats)
}

/// Report from simulating a whole distribution plan over an operator
/// tree.
#[derive(Debug, Clone)]
pub struct PlanSimReport {
    /// The computed root value (assembled).
    pub result: Tensor,
    /// Redistribution volume measured element by element along the plan.
    pub measured_move_elements: u128,
    /// Redistribution volume the closed-form model predicts for the same
    /// plan (must equal the measured volume).
    pub predicted_move_elements: u128,
    /// Reduction volume (words) charged by the model for distributed
    /// summation indices.
    pub predicted_reduce_words: u128,
    /// Largest per-processor multiply-add count across all contractions —
    /// the plan's computational makespan.
    pub max_local_iterations: u128,
}

/// Execute a [`crate::dp::DistPlan`] on the simulated machine: every
/// contraction runs over its γ-local iteration subspaces, every
/// redistribution along the plan is counted both element-by-element and
/// with the closed-form model, and the assembled result is returned for
/// comparison against a sequential execution.
///
/// # Errors
/// [`DistError`] when a binding is missing or the plan does not cover the
/// tree (previously a panic deep in the walk).
pub fn simulate_plan(
    tree: &tce_ir::OpTree,
    space: &IndexSpace,
    plan: &crate::dp::DistPlan,
    machine: &crate::dp::Machine,
    inputs: &std::collections::HashMap<tce_ir::TensorId, &Tensor>,
    funcs: &std::collections::HashMap<String, tce_tensor::IntegralFn>,
) -> Result<PlanSimReport, DistError> {
    use crate::cost::{after_reduction, move_cost};
    use tce_ir::{Leaf, NodeId, OpKind};

    struct Ctx<'a> {
        tree: &'a tce_ir::OpTree,
        space: &'a IndexSpace,
        plan: &'a crate::dp::DistPlan,
        machine: &'a crate::dp::Machine,
        inputs: &'a std::collections::HashMap<tce_ir::TensorId, &'a Tensor>,
        funcs: &'a std::collections::HashMap<String, tce_tensor::IntegralFn>,
        measured: u128,
        predicted: u128,
        reduce_words: u128,
        max_iters: u128,
    }

    /// Count a redistribution both ways.
    fn account_move(ctx: &mut Ctx, dims: &[IndexVar], from: &DistTuple, to: &DistTuple) {
        let set = IndexSet::from_vars(dims.iter().copied());
        if from.normalize(set) == to.normalize(set) {
            return;
        }
        ctx.predicted += move_cost(dims, ctx.space, &ctx.machine.grid, from, to);
        ctx.measured += move_cost_elementwise(dims, ctx.space, &ctx.machine.grid, from, to);
    }

    /// Compute node `u`'s value with its result distributed as `alpha`.
    fn eval(ctx: &mut Ctx, u: NodeId, alpha: &DistTuple) -> Result<Tensor, DistError> {
        let indices = ctx.tree.node(u).indices;
        Ok(match &ctx.tree.node(u).kind {
            OpKind::Leaf(Leaf::One) => Tensor::from_elem(&[], 1.0),
            OpKind::Leaf(Leaf::Input {
                tensor,
                indices: dims,
            }) => {
                let value = (*ctx
                    .inputs
                    .get(tensor)
                    .ok_or(DistError::MissingInput { tensor: *tensor })?)
                .clone();
                if !alpha.no_replicate(indices) {
                    // Broadcast from the recorded non-replicated source.
                    let beta = ctx.plan.node_input_source[u.0 as usize]
                        .clone()
                        .unwrap_or_else(|| DistTuple::all_one(ctx.machine.grid.rank()));
                    account_move(ctx, dims, &beta, alpha);
                }
                value
            }
            OpKind::Leaf(Leaf::Func {
                name,
                indices: dims,
                ..
            }) => {
                // Computed in place (replicas recompute): no communication.
                let f = ctx
                    .funcs
                    .get(name)
                    .ok_or_else(|| DistError::MissingFunction { name: name.clone() })?;
                let shape: Vec<usize> = dims.iter().map(|&v| ctx.space.extent(v)).collect();
                Tensor::from_fn(&shape, |idx| f.eval(idx))
            }
            OpKind::Contract { left, right } => {
                let (l, r) = (*left, *right);
                let (gamma, mode) = ctx.plan.node_gamma[u.0 as usize]
                    .clone()
                    .ok_or(DistError::UnassignedContraction { node: u.0 })?;
                let child_l = gamma.project(ctx.tree.node(l).indices);
                let child_r = gamma.project(ctx.tree.node(r).indices);
                let lv = eval(ctx, l, &child_l)?;
                let rv = eval(ctx, r, &child_r)?;
                let dims_of = |n: NodeId| -> Vec<IndexVar> {
                    match &ctx.tree.node(n).kind {
                        OpKind::Leaf(Leaf::Input { indices, .. })
                        | OpKind::Leaf(Leaf::Func { indices, .. }) => indices.clone(),
                        _ => ctx.tree.node(n).indices.iter().collect(),
                    }
                };
                let out_dims: Vec<IndexVar> = indices.iter().collect();
                let (value, stats) = simulate_contraction(
                    &dims_of(l),
                    &dims_of(r),
                    &out_dims,
                    ctx.space,
                    &ctx.machine.grid,
                    &gamma,
                    &lv,
                    &rv,
                );
                ctx.max_iters = ctx.max_iters.max(stats.max_local_iterations);
                let sums = ctx.tree.sum_indices(u);
                ctx.reduce_words += crate::cost::reduce_cost(
                    indices,
                    sums,
                    ctx.space,
                    &ctx.machine.grid,
                    &gamma,
                    mode,
                );
                let after = after_reduction(&gamma, indices, sums, mode);
                account_move(ctx, &out_dims, &after, alpha);
                value
            }
        })
    }

    let root_alpha = plan.node_dist[tree.root.0 as usize]
        .clone()
        .ok_or(DistError::UnassignedRoot)?;
    let mut ctx = Ctx {
        tree,
        space,
        plan,
        machine,
        inputs,
        funcs,
        measured: 0,
        predicted: 0,
        reduce_words: 0,
        max_iters: 0,
    };
    let result = eval(&mut ctx, tree.root, &root_alpha)?;
    Ok(PlanSimReport {
        result,
        measured_move_elements: ctx.measured,
        predicted_move_elements: ctx.predicted,
        predicted_reduce_words: ctx.reduce_words,
        max_local_iterations: ctx.max_iters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::move_cost;
    use crate::tuple::enumerate_tuples;
    use tce_tensor::BinaryContraction;

    fn setup(n: usize) -> (IndexSpace, IndexVar, IndexVar, IndexVar) {
        let mut sp = IndexSpace::new();
        let r = sp.add_range("N", n);
        let i = sp.add_var("i", r);
        let j = sp.add_var("j", r);
        let k = sp.add_var("k", r);
        (sp, i, j, k)
    }

    #[test]
    fn closed_form_move_cost_matches_elementwise_enumeration() {
        let (sp, i, j, _) = setup(6);
        let grid = ProcessorGrid::new(vec![2, 3]);
        let dims = [i, j];
        let set = IndexSet::from_vars(dims);
        let tuples = enumerate_tuples(set, 2);
        for beta in &tuples {
            for alpha in &tuples {
                let fast = move_cost(&dims, &sp, &grid, beta, alpha);
                let slow = move_cost_elementwise(&dims, &sp, &grid, beta, alpha);
                assert_eq!(
                    fast,
                    slow,
                    "β={} α={}",
                    beta.display(&sp),
                    alpha.display(&sp)
                );
            }
        }
    }

    #[test]
    fn simulated_matmul_matches_sequential_for_all_gammas() {
        let (sp, i, j, k) = setup(4);
        let grid = ProcessorGrid::new(vec![2, 2]);
        let a = Tensor::random(&[4, 4], 1);
        let b = Tensor::random(&[4, 4], 2);
        let spec = BinaryContraction {
            a: vec![i, k],
            b: vec![k, j],
            out: vec![i, j],
        };
        let expect = tce_tensor::contract_naive(&spec, &sp, &a, &b);
        let loops = IndexSet::from_vars([i, j, k]);
        for gamma in enumerate_tuples(loops, 2) {
            let (got, stats) =
                simulate_contraction(&[i, k], &[k, j], &[i, j], &sp, &grid, &gamma, &a, &b);
            assert!(got.approx_eq(&expect, 1e-10), "γ = {}", gamma.display(&sp));
            assert!(stats.representatives >= 1);
        }
    }

    #[test]
    fn full_distribution_partitions_work_evenly() {
        let (sp, i, j, k) = setup(8);
        let grid = ProcessorGrid::new(vec![2, 2]);
        let a = Tensor::random(&[8, 8], 3);
        let b = Tensor::random(&[8, 8], 4);
        let gamma = DistTuple(vec![DistEntry::Idx(i), DistEntry::Idx(j)]);
        let (_, stats) =
            simulate_contraction(&[i, k], &[k, j], &[i, j], &sp, &grid, &gamma, &a, &b);
        // 512 iterations split over 4 processors.
        assert_eq!(stats.max_local_iterations, 128);
        assert_eq!(stats.total_iterations, 512);
        assert_eq!(stats.representatives, 4);
    }

    #[test]
    fn sequential_tuple_uses_one_processor() {
        let (sp, i, j, k) = setup(4);
        let grid = ProcessorGrid::new(vec![4]);
        let a = Tensor::random(&[4, 4], 5);
        let b = Tensor::random(&[4, 4], 6);
        let gamma = DistTuple::all_one(1);
        let (got, stats) =
            simulate_contraction(&[i, k], &[k, j], &[i, j], &sp, &grid, &gamma, &a, &b);
        assert_eq!(stats.representatives, 1);
        assert_eq!(stats.max_local_iterations, 64);
        let spec = BinaryContraction {
            a: vec![i, k],
            b: vec![k, j],
            out: vec![i, j],
        };
        assert!(got.approx_eq(&tce_tensor::contract_naive(&spec, &sp, &a, &b), 1e-10));
    }

    #[test]
    fn replication_duplicates_work_but_not_results() {
        let (sp, i, j, k) = setup(4);
        let grid = ProcessorGrid::new(vec![2]);
        let a = Tensor::random(&[4, 4], 7);
        let b = Tensor::random(&[4, 4], 8);
        let gamma = DistTuple::all_replicate(1);
        let (got, stats) =
            simulate_contraction(&[i, k], &[k, j], &[i, j], &sp, &grid, &gamma, &a, &b);
        // Both processors run everything; one representative counted.
        assert_eq!(stats.total_iterations, 2 * 64);
        assert_eq!(stats.representatives, 1);
        let spec = BinaryContraction {
            a: vec![i, k],
            b: vec![k, j],
            out: vec![i, j],
        };
        assert!(got.approx_eq(&tce_tensor::contract_naive(&spec, &sp, &a, &b), 1e-10));
    }

    #[test]
    fn plan_simulation_matches_sequential_and_model() {
        use crate::dp::{optimize_distribution, Machine};
        use tce_ir::{TensorDecl, TensorTable};
        // S[i,l] = Σ (A·B)·C on several machines.
        let (sp, i, j, k) = setup(6);
        let mut sp = sp;
        let r = sp.range_of(i);
        let l = sp.add_var("l", r);
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![r, r]));
        let tb = tensors.add(TensorDecl::dense("B", vec![r, r]));
        let tc = tensors.add(TensorDecl::dense("C", vec![r, r]));
        let mut tree = tce_ir::OpTree::new();
        let la = tree.leaf_input(ta, vec![i, j]);
        let lb = tree.leaf_input(tb, vec![j, k]);
        let ab = tree.contract(la, lb, IndexSet::from_vars([i, k]));
        let lc = tree.leaf_input(tc, vec![k, l]);
        tree.contract(ab, lc, IndexSet::from_vars([i, l]));

        let a = Tensor::random(&[6, 6], 1);
        let b = Tensor::random(&[6, 6], 2);
        let c = Tensor::random(&[6, 6], 3);
        let mut inputs = std::collections::HashMap::new();
        inputs.insert(ta, &a);
        inputs.insert(tb, &b);
        inputs.insert(tc, &c);
        let expect = tce_exec_free_reference(&tree, &sp, &inputs);

        for (dims, word) in [(vec![2usize], 1u128), (vec![2, 2], 1), (vec![4], 50)] {
            let machine = Machine {
                grid: ProcessorGrid::new(dims),
                word_cost: word,
            };
            let plan = optimize_distribution(&tree, &sp, &machine);
            let report = simulate_plan(
                &tree,
                &sp,
                &plan,
                &machine,
                &inputs,
                &std::collections::HashMap::new(),
            )
            .expect("plan covers tree");
            assert!(report.result.approx_eq(&expect, 1e-9));
            assert_eq!(
                report.measured_move_elements, report.predicted_move_elements,
                "closed-form MoveCost must be exact along the plan"
            );
            // The plan's total cost decomposes consistently: communication
            // charged in the DP ≥ the plan's redistribution volume (the DP
            // also charges input broadcasts and reductions).
            let comm_weighted = report
                .predicted_move_elements
                .saturating_add(report.predicted_reduce_words)
                .saturating_mul(machine.word_cost);
            assert!(comm_weighted <= plan.total_cost + report.max_local_iterations * 2);
        }
    }

    /// Sequential reference without pulling in tce-exec (manual two-step).
    fn tce_exec_free_reference(
        tree: &tce_ir::OpTree,
        sp: &IndexSpace,
        inputs: &std::collections::HashMap<tce_ir::TensorId, &Tensor>,
    ) -> Tensor {
        use tce_ir::{Leaf, OpKind};
        let mut values: Vec<Option<Tensor>> = vec![None; tree.len()];
        for id in tree.postorder() {
            let v = match &tree.node(id).kind {
                OpKind::Leaf(Leaf::Input { tensor, .. }) => (*inputs[tensor]).clone(),
                OpKind::Leaf(Leaf::One) => Tensor::from_elem(&[], 1.0),
                OpKind::Leaf(Leaf::Func { .. }) => unreachable!(),
                OpKind::Contract { left, right } => {
                    let dims_of = |n: tce_ir::NodeId| -> Vec<IndexVar> {
                        match &tree.node(n).kind {
                            OpKind::Leaf(Leaf::Input { indices, .. }) => indices.clone(),
                            _ => tree.node(n).indices.iter().collect(),
                        }
                    };
                    let spec = BinaryContraction {
                        a: dims_of(*left),
                        b: dims_of(*right),
                        out: tree.node(id).indices.iter().collect(),
                    };
                    tce_tensor::contract_naive(
                        &spec,
                        sp,
                        values[left.0 as usize].as_ref().unwrap(),
                        values[right.0 as usize].as_ref().unwrap(),
                    )
                }
            };
            values[id.0 as usize] = Some(v);
        }
        values[tree.root.0 as usize].take().unwrap()
    }
}
