//! Single-term operation minimization.
//!
//! Given one product term `Σ_{sum} F₁·F₂·…·Fₙ` with a required output index
//! set, find the binary contraction tree with the fewest arithmetic
//! operations.  This is the generalized matrix-chain problem of paper §2 —
//! NP-complete in general [Lam et al. 1997], attacked here three ways:
//!
//! * [`optimize_exhaustive`] — enumerate every binary tree (oracle; `n ≤ 10`
//!   or so);
//! * [`optimize_subset_dp`] — dynamic programming over factor subsets,
//!   `O(3ⁿ)` time, exact;
//! * [`optimize_branch_bound`] — the paper's "pruning search procedure":
//!   best-known-cost pruning over contraction orders, exact and "very
//!   efficient in practice".
//!
//! All three agree on the optimum (tested); they differ in how much of the
//! search space they visit.
//!
//! The *result indices* of any intermediate are fully determined by which
//! factors it covers: an index must be kept iff it appears in the output or
//! in a factor outside the subtree (keeping anything more only enlarges
//! every later iteration space, keeping less is incorrect), so the search
//! is over tree *shapes* only.

use tce_ir::{Factor, IndexSet, IndexSpace, Leaf, NodeId, OpTree, Product};

/// A single-term optimization problem.
#[derive(Debug, Clone)]
pub struct OpMinProblem {
    /// Indices of the result (kept after all summations).
    pub output: IndexSet,
    /// The factors, as operator-tree leaves.
    pub factors: Vec<Leaf>,
}

/// Index set of a leaf.
pub fn leaf_indices(leaf: &Leaf) -> IndexSet {
    match leaf {
        Leaf::Input { indices, .. } | Leaf::Func { indices, .. } => {
            IndexSet::from_vars(indices.iter().copied())
        }
        Leaf::One => IndexSet::EMPTY,
    }
}

impl OpMinProblem {
    /// Build a problem from a product term and the target's index set.
    pub fn from_term(output: IndexSet, term: &Product) -> Result<Self, String> {
        if term.factors.is_empty() {
            return Err("empty product".into());
        }
        let factors: Vec<Leaf> = term
            .factors
            .iter()
            .map(|f| match f {
                Factor::Tensor(r) => Leaf::Input {
                    tensor: r.tensor,
                    indices: r.indices.clone(),
                },
                Factor::Func(func) => Leaf::Func {
                    name: func.name.clone(),
                    indices: func.indices.clone(),
                    cost_per_eval: func.cost_per_eval,
                },
            })
            .collect();
        let all = factors
            .iter()
            .fold(IndexSet::EMPTY, |s, f| s.union(leaf_indices(f)));
        if !output.is_subset(all) {
            return Err("output index missing from every factor".into());
        }
        Ok(Self { output, factors })
    }

    /// Number of factors.
    pub fn n(&self) -> usize {
        self.factors.len()
    }

    fn indices_of_mask(&self, mask: u32) -> IndexSet {
        let mut s = IndexSet::EMPTY;
        for (i, f) in self.factors.iter().enumerate() {
            if mask & (1 << i) != 0 {
                s = s.union(leaf_indices(f));
            }
        }
        s
    }

    /// The indices an intermediate covering exactly `mask` must retain:
    /// those of its factors that also appear in the output or in a factor
    /// outside `mask`.
    fn result_of_mask(&self, mask: u32) -> IndexSet {
        let full = (1u32 << self.n()) - 1;
        let needed = self.output.union(self.indices_of_mask(full & !mask));
        self.indices_of_mask(mask).inter(needed)
    }
}

/// An optimization outcome: the chosen tree and its contraction cost.
///
/// `contraction_ops` excludes leaf (integral-evaluation) cost, which is
/// identical for every tree shape; [`OpTree::total_ops`] on `tree` gives
/// the total including leaves.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// The optimal operator tree.
    pub tree: OpTree,
    /// Flops spent in contraction nodes (2 per iteration point).
    pub contraction_ops: u128,
}

/// Append to `tree` the subtree described by `plan` (split choices per
/// mask), returning the subtree root.
fn build_tree(
    p: &OpMinProblem,
    space: &IndexSpace,
    tree: &mut OpTree,
    split: &dyn Fn(u32) -> u32,
    mask: u32,
) -> NodeId {
    let _ = space;
    if mask.count_ones() == 1 {
        let i = mask.trailing_zeros() as usize;
        let leaf = p.factors[i].clone();
        let id = match leaf {
            Leaf::Input { tensor, indices } => tree.leaf_input(tensor, indices),
            Leaf::Func {
                name,
                indices,
                cost_per_eval,
            } => tree.leaf_func(&name, indices, cost_per_eval),
            Leaf::One => tree.leaf_one(),
        };
        // Reduce immediately if the factor carries indices nothing else
        // needs (single-factor summation): Contract(leaf, 1).
        let want = p.result_of_mask(mask);
        if want != leaf_indices(&p.factors[i]) {
            let one = tree.leaf_one();
            return tree.contract(id, one, want);
        }
        return id;
    }
    let l_mask = split(mask);
    let r_mask = mask & !l_mask;
    let l = build_tree(p, space, tree, split, l_mask);
    let r = build_tree(p, space, tree, split, r_mask);
    tree.contract(l, r, p.result_of_mask(mask))
}

/// Cost (flops) of the contraction combining result sets `l` and `r`,
/// plus any singleton-reduction cost folded in by the caller.
fn combine_cost(space: &IndexSpace, l: IndexSet, r: IndexSet) -> u128 {
    space.iteration_points(l.union(r)).saturating_mul(2)
}

/// Cost of materializing a singleton factor (0 unless it needs an immediate
/// reduction).
fn singleton_cost(p: &OpMinProblem, space: &IndexSpace, i: usize) -> u128 {
    let ind = leaf_indices(&p.factors[i]);
    let want = p.result_of_mask(1 << i);
    if want == ind {
        0
    } else {
        space.iteration_points(ind).saturating_mul(2)
    }
}

/// Exact optimization by dynamic programming over factor subsets.
///
/// `best[S] = min over proper submasks L of best[L] + best[S∖L] +
/// 2·Π extents(result(L) ∪ result(S∖L))`, `O(3ⁿ)` over `n ≤ 32` factors.
///
/// # Panics
/// Panics if the problem has no factors or more than 24 (the DP table
/// would exceed memory; split the term first).
pub fn optimize_subset_dp(p: &OpMinProblem, space: &IndexSpace) -> OptResult {
    let n = p.n();
    assert!(n >= 1, "no factors");
    assert!(n <= 24, "subset DP limited to 24 factors");
    let full: u32 = ((1u64 << n) - 1) as u32;

    let mut best = vec![u128::MAX; (full as usize) + 1];
    let mut choice = vec![0u32; (full as usize) + 1];
    let mut result = vec![IndexSet::EMPTY; (full as usize) + 1];
    for mask in 1..=full {
        result[mask as usize] = p.result_of_mask(mask);
    }
    for i in 0..n {
        best[1 << i] = singleton_cost(p, space, i);
    }
    // Iterate masks in increasing popcount via plain increasing order
    // (every proper submask is numerically smaller, so this is safe).
    for mask in 1..=full {
        if mask.count_ones() <= 1 {
            continue;
        }
        // Enumerate submasks containing the lowest set bit to halve work
        // and avoid (L,R)/(R,L) duplicates.
        let low = mask & mask.wrapping_neg();
        let rest = mask & !low;
        let mut sub = rest;
        loop {
            let l_mask = sub | low;
            let r_mask = mask & !l_mask;
            if r_mask != 0 {
                let cost = best[l_mask as usize]
                    .saturating_add(best[r_mask as usize])
                    .saturating_add(combine_cost(
                        space,
                        result[l_mask as usize],
                        result[r_mask as usize],
                    ));
                if cost < best[mask as usize] {
                    best[mask as usize] = cost;
                    choice[mask as usize] = l_mask;
                }
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }
    }

    let mut tree = OpTree::new();
    let split = |m: u32| choice[m as usize];
    let root = build_tree(p, space, &mut tree, &split, full);
    // A single-factor problem may end at a bare leaf; ensure root is set.
    tree.root = root;
    OptResult {
        tree,
        contraction_ops: best[full as usize],
    }
}

/// Exhaustive enumeration of all binary trees (oracle).  Exponential; use
/// for `n ≤ 8`.
pub fn optimize_exhaustive(p: &OpMinProblem, space: &IndexSpace) -> OptResult {
    use std::collections::HashMap;
    let n = p.n();
    assert!(
        (1..=12).contains(&n),
        "exhaustive oracle limited to 12 factors"
    );
    let full: u32 = ((1u64 << n) - 1) as u32;

    // Recursive enumeration of minimum over all splits — identical
    // recurrence to the DP but evaluated top-down without sharing across
    // *sibling* problems, serving as an independent implementation.
    fn go(
        p: &OpMinProblem,
        space: &IndexSpace,
        mask: u32,
        memo: &mut HashMap<u32, (u128, u32)>,
    ) -> u128 {
        if mask.count_ones() == 1 {
            return singleton_cost(p, space, mask.trailing_zeros() as usize);
        }
        if let Some(&(c, _)) = memo.get(&mask) {
            return c;
        }
        let low = mask & mask.wrapping_neg();
        let rest = mask & !low;
        let mut bestc = u128::MAX;
        let mut bestl = 0u32;
        let mut sub = rest;
        loop {
            let l_mask = sub | low;
            let r_mask = mask & !l_mask;
            if r_mask != 0 {
                let c = go(p, space, l_mask, memo)
                    .saturating_add(go(p, space, r_mask, memo))
                    .saturating_add(combine_cost(
                        space,
                        p.result_of_mask(l_mask),
                        p.result_of_mask(r_mask),
                    ));
                if c < bestc {
                    bestc = c;
                    bestl = l_mask;
                }
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }
        memo.insert(mask, (bestc, bestl));
        bestc
    }

    let mut memo = HashMap::new();
    let cost = go(p, space, full, &mut memo);
    let mut tree = OpTree::new();
    let split = |m: u32| memo.get(&m).map(|&(_, l)| l).unwrap_or(0);
    let root = build_tree(p, space, &mut tree, &split, full);
    tree.root = root;
    OptResult {
        tree,
        contraction_ops: cost,
    }
}

/// The paper's pruning search: explore contraction orders over the current
/// list of intermediates, pruning any partial order whose accumulated cost
/// already reaches the best complete solution found so far (initialized by
/// a cheapest-pair greedy pass).  Exact.
pub fn optimize_branch_bound(p: &OpMinProblem, space: &IndexSpace) -> OptResult {
    let n = p.n();
    assert!(n >= 1, "no factors");
    assert!(n <= 20, "branch-and-bound limited to 20 factors");
    let full: u32 = ((1u64 << n) - 1) as u32;

    // Greedy upper bound: repeatedly contract the cheapest pair.
    let greedy = {
        let mut items: Vec<u32> = (0..n).map(|i| 1u32 << i).collect();
        let mut cost: u128 = (0..n).map(|i| singleton_cost(p, space, i)).sum();
        while items.len() > 1 {
            let mut best = (u128::MAX, 0usize, 0usize);
            for i in 0..items.len() {
                for j in (i + 1)..items.len() {
                    let c = combine_cost(
                        space,
                        p.result_of_mask(items[i]),
                        p.result_of_mask(items[j]),
                    );
                    if c < best.0 {
                        best = (c, i, j);
                    }
                }
            }
            let (c, i, j) = best;
            cost = cost.saturating_add(c);
            let merged = items[i] | items[j];
            // i < j, so removing j never disturbs slot i.
            items.swap_remove(j);
            items[i] = merged;
        }
        cost
    };

    struct Search<'a> {
        p: &'a OpMinProblem,
        space: &'a IndexSpace,
        best_cost: u128,
        best_plan: std::collections::HashMap<u32, u32>,
        cur_plan: std::collections::HashMap<u32, u32>,
        /// memo of the best completed cost per state (set of masks).
        seen: std::collections::HashMap<Vec<u32>, u128>,
        /// Search nodes that survived the bound check (trace accounting).
        expanded: u64,
        /// Search nodes cut by the bound or by state domination.
        pruned: u64,
    }

    impl Search<'_> {
        fn run(&mut self, items: &mut Vec<u32>, cost_so_far: u128) {
            if cost_so_far >= self.best_cost {
                self.pruned += 1;
                return; // prune
            }
            if items.len() == 1 {
                self.expanded += 1;
                self.best_cost = cost_so_far;
                self.best_plan = self.cur_plan.clone();
                return;
            }
            let mut key: Vec<u32> = items.clone();
            key.sort_unstable();
            if let Some(&c) = self.seen.get(&key) {
                if c <= cost_so_far {
                    self.pruned += 1;
                    return; // dominated state
                }
            }
            self.seen.insert(key, cost_so_far);
            self.expanded += 1;

            // Order candidate pairs by cost (cheapest first) to reach good
            // bounds quickly.
            let mut pairs: Vec<(u128, usize, usize)> = Vec::new();
            for i in 0..items.len() {
                for j in (i + 1)..items.len() {
                    let c = combine_cost(
                        self.space,
                        self.p.result_of_mask(items[i]),
                        self.p.result_of_mask(items[j]),
                    );
                    pairs.push((c, i, j));
                }
            }
            pairs.sort_unstable_by_key(|&(c, _, _)| c);
            for (c, i, j) in pairs {
                let merged = items[i] | items[j];
                self.cur_plan.insert(merged, items[i].min(items[j]));
                let (mi, mj) = (items[i], items[j]);
                // Replace items[i] with merged, remove j.
                items[i] = merged;
                let removed = items.swap_remove(j);
                debug_assert_eq!(removed, mj);
                self.run(items, cost_so_far.saturating_add(c));
                // Undo.
                items.push(mj);
                let last = items.len() - 1;
                items.swap(j, last);
                items[i] = mi;
                self.cur_plan.remove(&merged);
            }
        }
    }

    let mut search = Search {
        p,
        space,
        best_cost: greedy.saturating_add(1),
        best_plan: Default::default(),
        cur_plan: Default::default(),
        seen: Default::default(),
        expanded: 0,
        pruned: 0,
    };
    let singleton_total: u128 = (0..n).map(|i| singleton_cost(p, space, i)).sum();
    let mut items: Vec<u32> = (0..n).map(|i| 1u32 << i).collect();
    search.run(&mut items, singleton_total);
    // Accumulated locally during the search; one flush here.
    tce_trace::counter("opmin.nodes_expanded", search.expanded);
    tce_trace::counter("opmin.pruned", search.pruned);
    tce_trace::counter_u128("opmin.best_cost", search.best_cost);

    let plan = search.best_plan;
    let mut tree = OpTree::new();
    let split = |m: u32| plan.get(&m).copied().unwrap_or(0);
    let root = build_tree(p, space, &mut tree, &split, full);
    tree.root = root;
    OptResult {
        tree,
        contraction_ops: search.best_cost,
    }
}

/// One point of the operations/memory trade-off over tree shapes.
#[derive(Debug, Clone)]
pub struct ParetoTree {
    /// The contraction tree.
    pub tree: OpTree,
    /// Contraction flops.
    pub ops: u128,
    /// Largest intermediate array (elements, unfused).
    pub max_intermediate: u128,
}

/// Pareto-optimal tree shapes over (operations, largest unfused
/// intermediate).  The paper's Fig. 5 feedback edge — "if no satisfactory
/// transformation is found, feedback is provided … causing it to seek a
/// different solution" — ultimately reaches the algebraic stage: a
/// slightly more expensive parenthesization may have fundamentally smaller
/// intermediates.  Returned sorted by increasing operations.
pub fn optimize_pareto(p: &OpMinProblem, space: &IndexSpace) -> Vec<ParetoTree> {
    let n = p.n();
    assert!((1..=16).contains(&n), "pareto search limited to 16 factors");
    let full: u32 = ((1u64 << n) - 1) as u32;

    /// (ops, max_intermediate, left split mask; 0 = leaf) plus indices of
    /// the child points used, for reconstruction.
    #[derive(Clone)]
    struct Point {
        ops: u128,
        mem: u128,
        split: u32,
        li: usize,
        ri: usize,
    }

    let mut table: Vec<Vec<Point>> = vec![Vec::new(); (full as usize) + 1];
    for i in 0..n {
        table[1usize << i] = vec![Point {
            ops: singleton_cost(p, space, i),
            mem: 0,
            split: 0,
            li: 0,
            ri: 0,
        }];
    }
    let mut result_cache = vec![IndexSet::EMPTY; (full as usize) + 1];
    for mask in 1..=full {
        result_cache[mask as usize] = p.result_of_mask(mask);
    }
    for mask in 1..=full {
        if mask.count_ones() <= 1 {
            continue;
        }
        let own_mem = if mask == full {
            0
        } else {
            space.iteration_points(result_cache[mask as usize])
        };
        let mut pts: Vec<Point> = Vec::new();
        let low = mask & mask.wrapping_neg();
        let rest = mask & !low;
        let mut sub = rest;
        loop {
            let l_mask = sub | low;
            let r_mask = mask & !l_mask;
            if r_mask != 0 {
                let combine = combine_cost(
                    space,
                    result_cache[l_mask as usize],
                    result_cache[r_mask as usize],
                );
                for (li, lp) in table[l_mask as usize].iter().enumerate() {
                    for (ri, rp) in table[r_mask as usize].iter().enumerate() {
                        let ops = lp.ops.saturating_add(rp.ops).saturating_add(combine);
                        let mem = lp.mem.max(rp.mem).max(own_mem);
                        pts.push(Point {
                            ops,
                            mem,
                            split: l_mask,
                            li,
                            ri,
                        });
                    }
                }
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }
        // Pareto-prune: sort by (ops, mem) and keep strictly improving mem.
        pts.sort_by_key(|q| (q.ops, q.mem));
        let mut front: Vec<Point> = Vec::new();
        let mut best_mem = u128::MAX;
        for q in pts {
            if q.mem < best_mem {
                best_mem = q.mem;
                front.push(q);
            }
        }
        table[mask as usize] = front;
    }

    // Materialize each root point's tree.
    fn build(
        p: &OpMinProblem,
        space: &IndexSpace,
        table: &[Vec<Point>],
        tree: &mut OpTree,
        mask: u32,
        pi: usize,
    ) -> NodeId {
        if mask.count_ones() == 1 {
            let split = |_m: u32| 0u32;
            return build_tree(p, space, tree, &split, mask);
        }
        let pt = &table[mask as usize][pi];
        let (l_mask, r_mask) = (pt.split, mask & !pt.split);
        let l = build(p, space, table, tree, l_mask, pt.li);
        let r = build(p, space, table, tree, r_mask, pt.ri);
        tree.contract(l, r, p.result_of_mask(mask))
    }

    let mut out = Vec::new();
    for (pi, pt) in table[full as usize].iter().enumerate() {
        let mut tree = OpTree::new();
        let root = build(p, space, &table, &mut tree, full, pi);
        tree.root = root;
        out.push(ParetoTree {
            tree,
            ops: pt.ops,
            max_intermediate: pt.mem,
        });
    }
    if tce_trace::enabled() {
        tce_trace::counter("opmin.pareto_points", out.len() as u64);
        if let Some(first) = out.first() {
            tce_trace::counter_u128("opmin.best_cost", first.ops);
        }
    }
    out
}

#[cfg(test)]
impl ParetoTree {
    fn mem_strictly_better(&self, prev: u128) -> bool {
        self.max_intermediate < prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_ir::{IndexSpace, TensorDecl, TensorTable};

    /// The §2 running example: S_abij = Σ_cdefkl A_acik B_befl C_dfjk D_cdel.
    fn section2(n_ext: usize) -> (IndexSpace, OpMinProblem) {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", n_ext);
        let vs = space.add_vars("a b c d e f i j k l", n);
        let (a, b, c, d, e, f, i, j, k, l) = (
            vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6], vs[7], vs[8], vs[9],
        );
        let mut tensors = TensorTable::new();
        let mk = |tab: &mut TensorTable, name: &str| tab.add(TensorDecl::dense(name, vec![n; 4]));
        let (ta, tb, tc, td) = (
            mk(&mut tensors, "A"),
            mk(&mut tensors, "B"),
            mk(&mut tensors, "C"),
            mk(&mut tensors, "D"),
        );
        let p = OpMinProblem {
            output: IndexSet::from_vars([a, b, i, j]),
            factors: vec![
                Leaf::Input {
                    tensor: ta,
                    indices: vec![a, c, i, k],
                },
                Leaf::Input {
                    tensor: tb,
                    indices: vec![b, e, f, l],
                },
                Leaf::Input {
                    tensor: tc,
                    indices: vec![d, f, j, k],
                },
                Leaf::Input {
                    tensor: td,
                    indices: vec![c, d, e, l],
                },
            ],
        };
        (space, p)
    }

    #[test]
    fn finds_paper_6n6_optimum() {
        // Paper §2: the op-minimal BDCA form needs 6·N^6 operations.
        let (space, p) = section2(10);
        let dp = optimize_subset_dp(&p, &space);
        assert_eq!(dp.contraction_ops, 6 * 10u128.pow(6));
        dp.tree.validate().unwrap();
        assert_eq!(dp.tree.total_ops(&space), 6 * 10u128.pow(6));
    }

    #[test]
    fn all_three_methods_agree_on_section2() {
        let (space, p) = section2(7);
        let dp = optimize_subset_dp(&p, &space);
        let ex = optimize_exhaustive(&p, &space);
        let bb = optimize_branch_bound(&p, &space);
        assert_eq!(dp.contraction_ops, ex.contraction_ops);
        assert_eq!(dp.contraction_ops, bb.contraction_ops);
        bb.tree.validate().unwrap();
        ex.tree.validate().unwrap();
    }

    #[test]
    fn matrix_chain_special_case() {
        // A[i,j]·B[j,k]·C[k,l] with skewed extents: classic matrix chain.
        // i:2, j:100, k:2, l:100 → (AB)C costs 2·(2·100·2) + 2·(2·2·100)
        // = 1600; A(BC) costs 2·(100·2·100)+2·(2·100·100) = 80000.
        let mut space = IndexSpace::new();
        let r2 = space.add_range("S", 2);
        let r100 = space.add_range("L", 100);
        let i = space.add_var("i", r2);
        let j = space.add_var("j", r100);
        let k = space.add_var("k", r2);
        let l = space.add_var("l", r100);
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![r2, r100]));
        let tb = tensors.add(TensorDecl::dense("B", vec![r100, r2]));
        let tc = tensors.add(TensorDecl::dense("C", vec![r2, r100]));
        let p = OpMinProblem {
            output: IndexSet::from_vars([i, l]),
            factors: vec![
                Leaf::Input {
                    tensor: ta,
                    indices: vec![i, j],
                },
                Leaf::Input {
                    tensor: tb,
                    indices: vec![j, k],
                },
                Leaf::Input {
                    tensor: tc,
                    indices: vec![k, l],
                },
            ],
        };
        let dp = optimize_subset_dp(&p, &space);
        assert_eq!(dp.contraction_ops, 1600);
        let bb = optimize_branch_bound(&p, &space);
        assert_eq!(bb.contraction_ops, 1600);
    }

    #[test]
    fn single_factor_identity() {
        // Output = factor indices: tree is the bare leaf, zero cost.
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 5);
        let i = space.add_var("i", n);
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n]));
        let p = OpMinProblem {
            output: i.singleton(),
            factors: vec![Leaf::Input {
                tensor: ta,
                indices: vec![i],
            }],
        };
        let dp = optimize_subset_dp(&p, &space);
        assert_eq!(dp.contraction_ops, 0);
        assert_eq!(dp.tree.len(), 1);
    }

    #[test]
    fn single_factor_reduction_uses_one_leaf() {
        // E = Σ_i A[i] — needs a unary reduction, expressed as A·1.
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 5);
        let i = space.add_var("i", n);
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n]));
        let p = OpMinProblem {
            output: IndexSet::EMPTY,
            factors: vec![Leaf::Input {
                tensor: ta,
                indices: vec![i],
            }],
        };
        let dp = optimize_subset_dp(&p, &space);
        assert_eq!(dp.contraction_ops, 10); // 2·N
        dp.tree.validate().unwrap();
        assert_eq!(dp.tree.node(dp.tree.root).indices, IndexSet::EMPTY);
        assert!(dp
            .tree
            .nodes
            .iter()
            .any(|nd| matches!(nd.kind, tce_ir::OpKind::Leaf(Leaf::One))));
    }

    #[test]
    fn from_term_conversion_and_errors() {
        let (space, _) = section2(4);
        let a = space.var_by_name("a").unwrap();
        let z = IndexSet::from_vars([a]);
        let empty = tce_ir::Product {
            coeff: 1.0,
            factors: vec![],
        };
        assert!(OpMinProblem::from_term(z, &empty).is_err());
    }

    #[test]
    fn randomized_dp_matches_oracle() {
        use tce_ir::rng::Rng;
        // Random 3-5 factor problems over 6 indices with mixed extents;
        // subset DP must equal the exhaustive oracle and branch-and-bound.
        let mut rng = Rng::new(20020422);
        for trial in 0..60 {
            let mut space = IndexSpace::new();
            let r1 = space.add_range("P", rng.usize_in(2..6));
            let r2 = space.add_range("Q", rng.usize_in(2..12));
            let vars: Vec<_> = (0..6)
                .map(|q| space.add_var(&format!("x{q}"), if q % 2 == 0 { r1 } else { r2 }))
                .collect();
            let mut tensors = TensorTable::new();
            let nf = rng.usize_in(3..6);
            let mut factors = Vec::new();
            let mut used = IndexSet::EMPTY;
            for fi in 0..nf {
                let arity = rng.usize_in(1..4);
                let mut idxs = Vec::new();
                let mut set = IndexSet::EMPTY;
                for _ in 0..arity {
                    let v = vars[rng.usize_in(0..vars.len())];
                    if !set.contains(v) {
                        set.insert(v);
                        idxs.push(v);
                    }
                }
                used = used.union(set);
                let dims = idxs.iter().map(|&v| space.range_of(v)).collect();
                let t = tensors.add(TensorDecl::dense(&format!("T{trial}_{fi}"), dims));
                factors.push(Leaf::Input {
                    tensor: t,
                    indices: idxs,
                });
            }
            // Output: random subset of used indices.
            let mut output = IndexSet::EMPTY;
            for v in used.iter() {
                if rng.bool_with(0.4) {
                    output.insert(v);
                }
            }
            let p = OpMinProblem { output, factors };
            let dp = optimize_subset_dp(&p, &space);
            let ex = optimize_exhaustive(&p, &space);
            let bb = optimize_branch_bound(&p, &space);
            assert_eq!(dp.contraction_ops, ex.contraction_ops, "trial {trial}");
            assert_eq!(dp.contraction_ops, bb.contraction_ops, "trial {trial}");
            dp.tree.validate().unwrap();
            bb.tree.validate().unwrap();
            assert_eq!(dp.tree.node(dp.tree.root).indices, output);
        }
    }

    #[test]
    fn intermediate_keeps_only_needed_indices() {
        let (space, p) = section2(10);
        let dp = optimize_subset_dp(&p, &space);
        // Every non-root internal node's indices must be needed later:
        // check none exceeds 4 dims (the paper's T1/T2 are 4-dim).
        for id in dp.tree.internal_postorder() {
            assert!(dp.tree.node(id).indices.len() <= 4);
        }
    }

    #[test]
    fn pareto_trees_sorted_and_valid() {
        let (space, p) = section2(10);
        let front = optimize_pareto(&p, &space);
        assert!(!front.is_empty());
        // First point is the operation-minimal tree (6·N^6).
        assert_eq!(front[0].ops, 6 * 10u128.pow(6));
        let mut last_ops = 0u128;
        let mut last_mem = u128::MAX;
        for pt in &front {
            pt.tree.validate().unwrap();
            assert!(pt.ops >= last_ops);
            assert!(pt.mem_strictly_better(last_mem));
            last_ops = pt.ops;
            last_mem = pt.max_intermediate;
            // The tree's actual costs match the point.
            assert_eq!(pt.tree.total_ops(&space), pt.ops);
            let max_inter = pt
                .tree
                .internal_postorder()
                .into_iter()
                .filter(|&id| id != pt.tree.root)
                .map(|id| space.iteration_points(pt.tree.node(id).indices))
                .max()
                .unwrap_or(0);
            assert_eq!(max_inter, pt.max_intermediate);
        }
    }

    #[test]
    fn pareto_can_trade_ops_for_smaller_intermediates() {
        // Skewed chain where the op-minimal tree has a big intermediate
        // and a costlier association avoids it: A[i,j]·B[j]·C[j,k] with
        // huge i,k.  (A·B)[i] then ·C is op-minimal with tiny temps; force
        // an interesting case instead: A[i,j]·B[j,k]·C[k] with i huge:
        // op-minimal is A·(B·C) (temp over {j}); the alternative (A·B)
        // has temp {i,k}.
        let mut space = IndexSpace::new();
        let big = space.add_range("BIG", 100);
        let small = space.add_range("SML", 2);
        let i = space.add_var("i", big);
        let j = space.add_var("j", small);
        let k = space.add_var("k", big);
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![big, small]));
        let tb = tensors.add(TensorDecl::dense("B", vec![small, big]));
        let tc = tensors.add(TensorDecl::dense("C", vec![big]));
        let p = OpMinProblem {
            output: i.singleton(),
            factors: vec![
                Leaf::Input {
                    tensor: ta,
                    indices: vec![i, j],
                },
                Leaf::Input {
                    tensor: tb,
                    indices: vec![j, k],
                },
                Leaf::Input {
                    tensor: tc,
                    indices: vec![k],
                },
            ],
        };
        let front = optimize_pareto(&p, &space);
        // Both associations appear if neither dominates; the min-ops point
        // matches optimize_subset_dp.
        let dp = optimize_subset_dp(&p, &space);
        assert_eq!(front[0].ops, dp.contraction_ops);
        // Every non-first point has strictly smaller intermediates.
        for w in front.windows(2) {
            assert!(w[1].max_intermediate < w[0].max_intermediate);
            assert!(w[1].ops > w[0].ops);
        }
    }
}
