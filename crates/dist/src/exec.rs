//! Sharded execution of distribution plans.
//!
//! This is the module that turns the §7 distribution stage from a cost
//! model into a runnable machine: every tensor is materialized as
//! *per-rank shard buffers* laid out by its [`DistTuple`] over the
//! [`ProcessorGrid`], contractions run rank-parallel over their γ-local
//! iteration subspaces on the `tce-par` pool, redistribution is performed
//! as **block transfers** between shard buffers (one `memcpy`-backed box
//! per (destination, canonical source) pair — not the element-by-element
//! ownership enumeration of [`crate::sim`]), and partial sums from
//! distributed summation indices are combined with a **binomial reduction
//! tree**.
//!
//! Measured traffic is accounted exactly:
//!
//! * [`redistribute`] counts every element that lands on a rank other than
//!   the one already holding it; this equals the closed-form
//!   [`crate::cost::move_cost`] by construction — the kept sub-blocks are
//!   precisely the per-dimension range intersections the model subtracts.
//! * [`reduce_partial_sums`] counts, per tree round, the largest transfer
//!   in flight (the round's makespan under simultaneous transfers); summed
//!   over the ⌈log₂ p⌉ rounds of every summation grid dimension this
//!   equals [`crate::cost::reduce_cost`].
//!
//! The shared-memory pool substitutes for the message-passing machine the
//! paper assumes (see DESIGN §8): "ranks" are logical, shard buffers live
//! in one address space, and a transfer is a block copy — but ownership,
//! communication volume, and the reduction schedule are exactly those of
//! the distributed-memory algorithm, which is what the cost model is
//! validated against.  [`crate::sim`] remains the small-extent oracle this
//! executor is differentially tested against.

use crate::cost::{after_reduction, move_cost, reduce_cost, ReduceMode};
use crate::dp::{DistPlan, Machine};
use crate::error::DistError;
use crate::tuple::{DistEntry, DistTuple};
use std::collections::HashMap;
use std::ops::Range;
use tce_ir::{IndexSet, IndexSpace, IndexVar, Leaf, NodeId, OpKind, OpTree, TensorId};
use tce_par::{myrange, owner_of, parallel_map, ProcessorGrid};
use tce_tensor::{BinaryContraction, IntegralFn, Tensor};

/// A tensor materialized as per-rank shard buffers under a distribution
/// tuple.
///
/// `shards[id]` is `Some` exactly when rank `id` holds data under
/// [`DistTuple::holds`] *and* every owned range of the tensor's dimensions
/// is non-empty (a rank whose block is empty — e.g. more processors than
/// elements along a dimension — stores nothing).  Replicated dimensions
/// store a full copy per rank, as on a real machine.
#[derive(Debug, Clone)]
pub struct ShardedTensor {
    /// Dimension-order index variables of the global tensor.
    pub dims: Vec<IndexVar>,
    /// The distribution the shards are laid out by.
    pub tuple: DistTuple,
    /// One buffer per linear processor id.
    pub shards: Vec<Option<Tensor>>,
}

impl ShardedTensor {
    /// The tensor's index-variable set.
    pub fn index_set(&self) -> IndexSet {
        IndexSet::from_vars(self.dims.iter().copied())
    }

    /// The owned sub-ranges of every dimension at `coords` (full ranges
    /// for undistributed dimensions).
    fn owned_box(
        &self,
        space: &IndexSpace,
        grid: &ProcessorGrid,
        coords: &[usize],
    ) -> Vec<Range<usize>> {
        self.dims
            .iter()
            .map(|&v| self.tuple.owned_range(v, space, grid, coords))
            .collect()
    }

    /// Total elements held across all ranks (replicas counted per copy).
    pub fn held_elements(&self) -> u128 {
        self.shards.iter().flatten().map(|t| t.len() as u128).sum()
    }
}

/// Does `coords` store a (non-empty) shard of an array with dims `dims`
/// under `tuple`?  Returns the owned box when it does.
fn shard_box(
    dims: &[IndexVar],
    tuple: &DistTuple,
    space: &IndexSpace,
    grid: &ProcessorGrid,
    coords: &[usize],
) -> Option<Vec<Range<usize>>> {
    let set = IndexSet::from_vars(dims.iter().copied());
    if !tuple.holds(set, coords) {
        return None;
    }
    let ranges: Vec<Range<usize>> = dims
        .iter()
        .map(|&v| tuple.owned_range(v, space, grid, coords))
        .collect();
    if ranges.iter().any(|r| r.is_empty()) {
        return None;
    }
    Some(ranges)
}

/// Split a global tensor into per-rank shard buffers under `tuple`.
pub fn scatter(
    global: &Tensor,
    dims: &[IndexVar],
    tuple: &DistTuple,
    space: &IndexSpace,
    grid: &ProcessorGrid,
) -> ShardedTensor {
    let _span = tce_trace::span("dist.scatter");
    let shards = grid
        .processors()
        .map(|id| {
            let z = grid.coords(id);
            shard_box(dims, tuple, space, grid, &z).map(|ranges| {
                let starts: Vec<usize> = ranges.iter().map(|r| r.start).collect();
                let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                global.extract_block(&starts, &lens)
            })
        })
        .collect();
    ShardedTensor {
        dims: dims.to_vec(),
        tuple: tuple.clone(),
        shards,
    }
}

/// Assemble the global tensor from shard buffers.  Only *canonical* ranks
/// contribute (coordinate 0 along every grid dimension that does not
/// distribute one of the tensor's dims), so replicas are pasted once.
pub fn gather(src: &ShardedTensor, space: &IndexSpace, grid: &ProcessorGrid) -> Tensor {
    let _span = tce_trace::span("dist.gather");
    let shape: Vec<usize> = src.dims.iter().map(|&v| space.extent(v)).collect();
    let mut out = Tensor::zeros(&shape);
    let set = src.index_set();
    let covering: Vec<bool> = src
        .tuple
        .0
        .iter()
        .map(|e| matches!(e, DistEntry::Idx(v) if set.contains(*v)))
        .collect();
    for id in grid.processors() {
        let z = grid.coords(id);
        if !z.iter().zip(&covering).all(|(&zd, &cov)| cov || zd == 0) {
            continue;
        }
        if let Some(shard) = &src.shards[id] {
            let starts: Vec<usize> = src
                .owned_box(space, grid, &z)
                .iter()
                .map(|r| r.start)
                .collect();
            out.paste_block(&starts, shard);
        }
    }
    out
}

/// One per-dimension piece of a destination block, attributed to its
/// canonical source rank along the grid dimension that distributes the
/// variable (`None` when the source does not distribute it).
struct Seg {
    range: Range<usize>,
    owner: Option<(usize, usize)>, // (grid dim, source coordinate)
}

/// Re-lay a sharded tensor from its current tuple to `to`, moving data as
/// block transfers between shard buffers.  Returns the new sharding and
/// the number of elements that changed rank — which equals
/// [`crate::cost::move_cost`]`(dims, space, grid, from, to)` exactly.
///
/// Every destination rank pulls each piece of its `to`-block from a
/// *canonical* source: along grid dimensions where the source distributes
/// one of the tensor's variables the piece's owner is forced; along `1`
/// dimensions the source coordinate is 0; along replicated dimensions the
/// destination prefers **itself** (this is what makes the paper's
/// `⟨j,*,1⟩ → ⟨j,t,1⟩` example cost zero: every piece is already local).
pub fn redistribute(
    src: &ShardedTensor,
    to: &DistTuple,
    space: &IndexSpace,
    grid: &ProcessorGrid,
) -> (ShardedTensor, u128) {
    let set = src.index_set();
    // Identical layouts (up to normalization) share the same shards.
    if src.tuple.normalize(set) == to.normalize(set) {
        return (
            ShardedTensor {
                dims: src.dims.clone(),
                tuple: to.clone(),
                shards: src.shards.clone(),
            },
            0,
        );
    }
    let _span = tce_trace::span("dist.redistribute");
    let from = &src.tuple;
    let mut moved = 0u128;
    let mut shards: Vec<Option<Tensor>> = vec![None; grid.num_processors()];
    for id in grid.processors() {
        let z = grid.coords(id);
        let Some(dst_ranges) = shard_box(&src.dims, to, space, grid, &z) else {
            continue;
        };
        let lens: Vec<usize> = dst_ranges.iter().map(|r| r.len()).collect();
        let mut dst = Tensor::zeros(&lens);
        // Per-dimension decomposition of the needed box into segments by
        // canonical source.
        let segs: Vec<Vec<Seg>> = src
            .dims
            .iter()
            .zip(&dst_ranges)
            .map(|(&v, need)| {
                let from_dim = from
                    .0
                    .iter()
                    .position(|e| *e == DistEntry::Idx(v) && set.contains(v));
                match from_dim {
                    Some(d) => {
                        let (n, p) = (space.extent(v), grid.dims()[d]);
                        let mut out = Vec::new();
                        let mut i = need.start;
                        while i < need.end {
                            let w = owner_of(i, n, p);
                            let end = need.end.min(myrange(w, n, p).end);
                            out.push(Seg {
                                range: i..end,
                                owner: Some((d, w)),
                            });
                            i = end;
                        }
                        out
                    }
                    None => vec![Seg {
                        range: need.clone(),
                        owner: None,
                    }],
                }
            })
            .collect();
        // Base source coordinates: `1` entries force 0, replicated entries
        // prefer the destination itself; distributed entries are filled in
        // per segment combination.
        let mut base = z.clone();
        for (d, e) in from.0.iter().enumerate() {
            if *e == DistEntry::One {
                base[d] = 0;
            }
        }
        // Odometer over the cartesian product of per-dimension segments.
        let mut pick = vec![0usize; segs.len()];
        loop {
            let mut w = base.clone();
            let mut elems = 1u128;
            for (dim, &s) in pick.iter().enumerate() {
                let seg = &segs[dim][s];
                if let Some((d, coord)) = seg.owner {
                    w[d] = coord;
                }
                elems = elems.saturating_mul(seg.range.len() as u128);
            }
            let src_id = grid.id_of(&w);
            let shard = src.shards[src_id]
                .as_ref()
                .expect("canonical source holds every referenced block");
            if w != z {
                moved = moved.saturating_add(elems);
            }
            // Block copy: segment coordinates relative to each buffer.
            let src_starts: Vec<usize> = src
                .dims
                .iter()
                .zip(pick.iter().enumerate())
                .map(|(&v, (dim, &s))| {
                    segs[dim][s].range.start - from.owned_range(v, space, grid, &w).start
                })
                .collect();
            let seg_lens: Vec<usize> = pick
                .iter()
                .enumerate()
                .map(|(dim, &s)| segs[dim][s].range.len())
                .collect();
            let dst_starts: Vec<usize> = pick
                .iter()
                .enumerate()
                .map(|(dim, &s)| segs[dim][s].range.start - dst_ranges[dim].start)
                .collect();
            dst.paste_block(&dst_starts, &shard.extract_block(&src_starts, &seg_lens));
            // Advance.
            let mut dim = segs.len();
            loop {
                if dim == 0 {
                    break;
                }
                dim -= 1;
                pick[dim] += 1;
                if pick[dim] < segs[dim].len() {
                    break;
                }
                pick[dim] = 0;
            }
            if pick.iter().all(|&s| s == 0) {
                break;
            }
        }
        shards[id] = Some(dst);
    }
    tce_trace::counter("dist.redistributions", 1);
    tce_trace::counter_u128("dist.move_elements", moved);
    (
        ShardedTensor {
            dims: src.dims.clone(),
            tuple: to.clone(),
            shards,
        },
        moved,
    )
}

/// An [`IndexSpace`] whose extents are rank `z`'s γ-local block lengths
/// (variables keep their global ids and names, so contraction specs carry
/// over unchanged).
fn local_space(
    space: &IndexSpace,
    grid: &ProcessorGrid,
    gamma: &DistTuple,
    z: &[usize],
) -> IndexSpace {
    let mut sp = IndexSpace::new();
    for v in space.vars() {
        let ext = gamma.owned_range(v, space, grid, z).len();
        let r = sp.add_range(&format!("__loc{}", v.0), ext);
        sp.add_var(space.var_name(v), r);
    }
    sp
}

/// Run one binary contraction rank-parallel over γ-local iteration
/// subspaces.  Operand shardings must already be the γ-projections onto
/// each operand's indices (the caller redistributes first).  The returned
/// sharding carries `gamma` itself: ranks along summation grid dimensions
/// hold *partial* sums until [`reduce_partial_sums`] combines them.
///
/// Returns the sharded (pre-reduction) result and per-rank multiply-add
/// flop counts.
#[allow(clippy::too_many_arguments)]
pub fn contract_sharded(
    a: &ShardedTensor,
    b: &ShardedTensor,
    out_dims: &[IndexVar],
    space: &IndexSpace,
    grid: &ProcessorGrid,
    gamma: &DistTuple,
    threads: usize,
) -> (ShardedTensor, Vec<u128>) {
    let _span = tce_trace::span("dist.contract");
    let loops = a.index_set().union(b.index_set());
    let p = grid.num_processors();
    // Per-rank local contraction.  With several ranks each local GETT runs
    // single-threaded and the pool parallelizes across ranks; a 1×…×1
    // grid keeps the full thread count inside the one local kernel.
    let local_threads = if p == 1 { threads } else { 1 };
    let spec = BinaryContraction {
        a: a.dims.clone(),
        b: b.dims.clone(),
        out: out_dims.to_vec(),
    };
    let results: Vec<(Option<Tensor>, u128)> = parallel_map(p, threads.min(p), |id| {
        let z = grid.coords(id);
        // A `1` entry in γ concentrates the node on coordinate 0; other
        // ranks neither compute nor hold output.
        let Some(out_ranges) = shard_box(out_dims, gamma, space, grid, &z) else {
            return (None, 0);
        };
        let out_lens: Vec<usize> = out_ranges.iter().map(|r| r.len()).collect();
        let local_points: u128 = loops
            .iter()
            .map(|v| gamma.owned_range(v, space, grid, &z).len() as u128)
            .product();
        if local_points == 0 {
            // An empty local summation range: this rank contributes a
            // zero partial block.
            return (Some(Tensor::zeros(&out_lens)), 0);
        }
        let lsp = local_space(space, grid, gamma, &z);
        let av = a.shards[id]
            .as_ref()
            .expect("operand shard present on computing rank");
        let bv = b.shards[id]
            .as_ref()
            .expect("operand shard present on computing rank");
        let value = tce_tensor::contract_gett(&spec, &lsp, av, bv, local_threads);
        (Some(value), 2 * local_points)
    });
    let mut shards = Vec::with_capacity(p);
    let mut flops = Vec::with_capacity(p);
    for (t, f) in results {
        shards.push(t);
        flops.push(f);
    }
    (
        ShardedTensor {
            dims: out_dims.to_vec(),
            tuple: gamma.clone(),
            shards,
        },
        flops,
    )
}

/// Combine partial sums along every grid dimension that distributed a
/// summation index, with a binomial reduction tree (⌈log₂ p⌉ rounds per
/// dimension); [`ReduceMode::Replicate`] broadcasts the combined value
/// back down the same tree.  Returns the measured reduction traffic in
/// words: per round, the largest transfer in flight — which equals
/// [`crate::cost::reduce_cost`] for the same γ/mode.
pub fn reduce_partial_sums(
    out: &mut ShardedTensor,
    sum_indices: IndexSet,
    _space: &IndexSpace,
    grid: &ProcessorGrid,
    mode: ReduceMode,
) -> u128 {
    let gamma = out.tuple.clone();
    let mut words = 0u128;
    for (d, e) in gamma.0.iter().enumerate() {
        let DistEntry::Idx(v) = *e else { continue };
        if !sum_indices.contains(v) {
            continue;
        }
        let p = grid.dims()[d];
        if p > 1 {
            let _span = tce_trace::span("dist.reduce");
            let mut strides = Vec::new();
            let mut stride = 1usize;
            while stride < p {
                strides.push(stride);
                stride *= 2;
            }
            // Combine up the tree.
            for &stride in &strides {
                let mut round_max = 0u128;
                for id in grid.processors() {
                    let z = grid.coords(id);
                    if !z[d].is_multiple_of(2 * stride) || z[d] + stride >= p {
                        continue;
                    }
                    let mut zs = z.clone();
                    zs[d] += stride;
                    let sender_id = grid.id_of(&zs);
                    if let Some(sent) = out.shards[sender_id].take() {
                        round_max = round_max.max(sent.len() as u128);
                        match &mut out.shards[id] {
                            Some(acc) => acc.axpy(1.0, &sent),
                            none => *none = Some(sent),
                        }
                    }
                }
                words = words.saturating_add(round_max);
            }
            match mode {
                ReduceMode::Combine => {
                    // Stale partials on non-zero coordinates are dropped
                    // (already consumed by `take` on power-of-two senders;
                    // clear the rest).
                    for id in grid.processors() {
                        if grid.coords(id)[d] != 0 {
                            out.shards[id] = None;
                        }
                    }
                }
                ReduceMode::Replicate => {
                    // Broadcast back down the same tree.
                    for &stride in strides.iter().rev() {
                        let mut round_max = 0u128;
                        for id in grid.processors() {
                            let z = grid.coords(id);
                            if !z[d].is_multiple_of(2 * stride) || z[d] + stride >= p {
                                continue;
                            }
                            let mut zr = z.clone();
                            zr[d] += stride;
                            let receiver_id = grid.id_of(&zr);
                            if let Some(val) = out.shards[id].clone() {
                                round_max = round_max.max(val.len() as u128);
                                out.shards[receiver_id] = Some(val);
                            }
                        }
                        words = words.saturating_add(round_max);
                    }
                }
            }
        }
    }
    out.tuple = after_reduction(&gamma, out.index_set(), sum_indices, mode);
    tce_trace::counter_u128("dist.reduce_words", words);
    words
}

/// Everything measured while executing a [`DistPlan`] on the sharded
/// machine, alongside the closed-form predictions for the same plan.
#[derive(Debug, Clone)]
pub struct ShardExecReport {
    /// The assembled root value.
    pub result: Tensor,
    /// Elements that changed rank during redistribution (block transfers).
    pub moved_elements: u128,
    /// [`crate::cost::move_cost`] summed along the same plan — must equal
    /// `moved_elements`.
    pub predicted_move_elements: u128,
    /// Reduction-tree traffic measured round by round.
    pub reduce_words: u128,
    /// [`crate::cost::reduce_cost`] summed along the plan — must equal
    /// `reduce_words`.
    pub predicted_reduce_words: u128,
    /// Redistribution events that actually moved layout (normalized
    /// source ≠ normalized target).
    pub redistributions: u64,
    /// Multiply-add flops executed by each rank (function-leaf evaluation
    /// cost included).
    pub per_rank_flops: Vec<u128>,
}

impl ShardExecReport {
    /// The computational makespan: the busiest rank's flop count.
    pub fn max_rank_flops(&self) -> u128 {
        self.per_rank_flops.iter().copied().max().unwrap_or(0)
    }
}

/// Mutable measurement state accumulated while walking a plan.  Each
/// graph-scheduled task owns a private `Counters` so tasks never contend;
/// per-task counters are [`Counters::merge`]d in ascending task order
/// afterwards, which reproduces the sequential totals exactly (every field
/// is an order-independent sum).
#[derive(Debug, Clone)]
struct Counters {
    moved: u128,
    predicted: u128,
    reduce_words: u128,
    predicted_reduce: u128,
    redistributions: u64,
    per_rank_flops: Vec<u128>,
}

impl Counters {
    fn new(ranks: usize) -> Self {
        Counters {
            moved: 0,
            predicted: 0,
            reduce_words: 0,
            predicted_reduce: 0,
            redistributions: 0,
            per_rank_flops: vec![0; ranks],
        }
    }

    fn merge(&mut self, other: &Counters) {
        self.moved = self.moved.saturating_add(other.moved);
        self.predicted = self.predicted.saturating_add(other.predicted);
        self.reduce_words = self.reduce_words.saturating_add(other.reduce_words);
        self.predicted_reduce = self.predicted_reduce.saturating_add(other.predicted_reduce);
        self.redistributions += other.redistributions;
        for (a, b) in self.per_rank_flops.iter_mut().zip(&other.per_rank_flops) {
            *a = a.saturating_add(*b);
        }
    }
}

/// The immutable execution environment shared by the sequential walk and
/// every graph-scheduled task.
struct Env<'a> {
    tree: &'a OpTree,
    space: &'a IndexSpace,
    plan: &'a DistPlan,
    machine: &'a Machine,
    inputs: &'a HashMap<TensorId, &'a Tensor>,
    funcs: &'a HashMap<String, IntegralFn>,
    threads: usize,
}

impl Env<'_> {
    /// Redistribute and account measured + predicted volume.
    fn account_redistribute(
        &self,
        c: &mut Counters,
        value: &ShardedTensor,
        to: &DistTuple,
    ) -> ShardedTensor {
        let set = value.index_set();
        if value.tuple.normalize(set) == to.normalize(set) {
            let (out, _) = redistribute(value, to, self.space, &self.machine.grid);
            return out;
        }
        c.predicted += move_cost(
            &value.dims,
            self.space,
            &self.machine.grid,
            &value.tuple,
            to,
        );
        let (out, moved) = redistribute(value, to, self.space, &self.machine.grid);
        c.moved += moved;
        c.redistributions += 1;
        out
    }

    /// Compute node `u`'s value sharded as `alpha` from already-evaluated
    /// children (`lv`/`rv` are `Some` exactly for contraction nodes, each
    /// sharded as γ's projection onto that child's indices).
    fn eval_node(
        &self,
        c: &mut Counters,
        u: NodeId,
        alpha: &DistTuple,
        lv: Option<ShardedTensor>,
        rv: Option<ShardedTensor>,
    ) -> Result<ShardedTensor, DistError> {
        let grid = &self.machine.grid;
        let indices = self.tree.node(u).indices;
        Ok(match &self.tree.node(u).kind {
            OpKind::Leaf(Leaf::One) => {
                let tuple = alpha.normalize(IndexSet::EMPTY);
                let shards = grid
                    .processors()
                    .map(|id| {
                        let z = grid.coords(id);
                        shard_box(&[], &tuple, self.space, grid, &z)
                            .map(|_| Tensor::from_elem(&[], 1.0))
                    })
                    .collect();
                ShardedTensor {
                    dims: Vec::new(),
                    tuple,
                    shards,
                }
            }
            OpKind::Leaf(Leaf::Input {
                tensor,
                indices: dims,
            }) => {
                let global = *self
                    .inputs
                    .get(tensor)
                    .ok_or(DistError::MissingInput { tensor: *tensor })?;
                if alpha.no_replicate(indices) {
                    // Stored inputs start in any non-replicated layout for
                    // free.
                    scatter(global, dims, alpha, self.space, grid)
                } else {
                    // Read in the recorded non-replicated layout, then
                    // broadcast.
                    let beta = self.plan.node_input_source[u.0 as usize]
                        .clone()
                        .unwrap_or_else(|| DistTuple::all_one(grid.rank()));
                    let staged = scatter(global, dims, &beta, self.space, grid);
                    self.account_redistribute(c, &staged, alpha)
                }
            }
            OpKind::Leaf(Leaf::Func {
                name,
                indices: dims,
                cost_per_eval,
            }) => {
                // Computed in place under α: replicas recompute, no
                // communication.
                let f = self
                    .funcs
                    .get(name)
                    .ok_or_else(|| DistError::MissingFunction { name: name.clone() })?;
                let p = grid.num_processors();
                let results: Vec<(Option<Tensor>, u128)> =
                    parallel_map(p, self.threads.min(p), |id| {
                        let z = grid.coords(id);
                        let Some(ranges) = shard_box(dims, alpha, self.space, grid, &z) else {
                            return (None, 0);
                        };
                        let starts: Vec<usize> = ranges.iter().map(|r| r.start).collect();
                        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                        let mut global_idx = vec![0usize; dims.len()];
                        let value = Tensor::from_fn(&lens, |idx| {
                            for (d, (&i, &s)) in idx.iter().zip(&starts).enumerate() {
                                global_idx[d] = i + s;
                            }
                            f.eval(&global_idx)
                        });
                        let evals = value.len() as u128;
                        (Some(value), evals.saturating_mul(*cost_per_eval as u128))
                    });
                let mut shards = Vec::with_capacity(p);
                for (id, (t, fl)) in results.into_iter().enumerate() {
                    c.per_rank_flops[id] = c.per_rank_flops[id].saturating_add(fl);
                    shards.push(t);
                }
                ShardedTensor {
                    dims: dims.clone(),
                    tuple: alpha.clone(),
                    shards,
                }
            }
            OpKind::Contract { .. } => {
                let (gamma, mode) = self.plan.node_gamma[u.0 as usize]
                    .clone()
                    .ok_or(DistError::UnassignedContraction { node: u.0 })?;
                let lv = lv.expect("contraction children evaluated before the node");
                let rv = rv.expect("contraction children evaluated before the node");
                let out_dims: Vec<IndexVar> = indices.iter().collect();
                let (mut value, flops) = contract_sharded(
                    &lv,
                    &rv,
                    &out_dims,
                    self.space,
                    &self.machine.grid,
                    &gamma,
                    self.threads,
                );
                drop(lv);
                drop(rv);
                for (id, fl) in flops.into_iter().enumerate() {
                    c.per_rank_flops[id] = c.per_rank_flops[id].saturating_add(fl);
                }
                let sums = self.tree.sum_indices(u);
                c.predicted_reduce +=
                    reduce_cost(indices, sums, self.space, &self.machine.grid, &gamma, mode);
                c.reduce_words +=
                    reduce_partial_sums(&mut value, sums, self.space, &self.machine.grid, mode);
                self.account_redistribute(c, &value, alpha)
            }
        })
    }

    /// Recursive (sequential) evaluation: children left-to-right, then the
    /// node itself.
    fn eval(
        &self,
        c: &mut Counters,
        u: NodeId,
        alpha: &DistTuple,
    ) -> Result<ShardedTensor, DistError> {
        if let OpKind::Contract { left, right } = &self.tree.node(u).kind {
            let (l, r) = (*left, *right);
            let (gamma, _) = self.plan.node_gamma[u.0 as usize]
                .clone()
                .ok_or(DistError::UnassignedContraction { node: u.0 })?;
            let child_l = gamma.project(self.tree.node(l).indices);
            let child_r = gamma.project(self.tree.node(r).indices);
            let lv = self.eval(c, l, &child_l)?;
            let rv = self.eval(c, r, &child_r)?;
            self.eval_node(c, u, alpha, Some(lv), Some(rv))
        } else {
            self.eval_node(c, u, alpha, None, None)
        }
    }

    /// Top-down α pre-pass: the root carries the plan's root distribution,
    /// and every contraction hands each child γ's projection onto that
    /// child's indices.  Also validates every binding and plan entry so
    /// graph-scheduled task bodies are infallible.
    fn assign_alphas(&self, root_alpha: DistTuple) -> Result<Vec<Option<DistTuple>>, DistError> {
        let order = self.tree.postorder();
        let mut alphas: Vec<Option<DistTuple>> = vec![None; self.tree.len()];
        alphas[self.tree.root.0 as usize] = Some(root_alpha);
        // Reverse postorder visits parents before children.
        for &u in order.iter().rev() {
            match &self.tree.node(u).kind {
                OpKind::Contract { left, right } => {
                    let (gamma, _) = self.plan.node_gamma[u.0 as usize]
                        .clone()
                        .ok_or(DistError::UnassignedContraction { node: u.0 })?;
                    alphas[left.0 as usize] = Some(gamma.project(self.tree.node(*left).indices));
                    alphas[right.0 as usize] = Some(gamma.project(self.tree.node(*right).indices));
                }
                OpKind::Leaf(Leaf::Input { tensor, .. }) => {
                    if !self.inputs.contains_key(tensor) {
                        return Err(DistError::MissingInput { tensor: *tensor });
                    }
                }
                OpKind::Leaf(Leaf::Func { name, .. }) => {
                    if !self.funcs.contains_key(name) {
                        return Err(DistError::MissingFunction { name: name.clone() });
                    }
                }
                OpKind::Leaf(Leaf::One) => {}
            }
        }
        Ok(alphas)
    }
}

/// Execute a [`DistPlan`] over an operator tree on the sharded machine:
/// inputs are scattered into per-rank shard buffers, every contraction
/// runs rank-parallel over its γ-local subspace, redistribution moves
/// blocks between shard buffers, and distributed summation indices are
/// combined with a reduction tree.  The root value is gathered and
/// returned together with measured-vs-predicted communication volumes.
///
/// # Errors
/// [`DistError`] when a binding is missing or the plan does not cover the
/// tree (previously a panic deep in the walk).
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_sharded(
    tree: &OpTree,
    space: &IndexSpace,
    plan: &DistPlan,
    machine: &Machine,
    inputs: &HashMap<TensorId, &Tensor>,
    funcs: &HashMap<String, IntegralFn>,
    threads: usize,
) -> Result<ShardExecReport, DistError> {
    let _span = tce_trace::span("dist.exec");
    let root_alpha = plan.node_dist[tree.root.0 as usize]
        .clone()
        .ok_or(DistError::UnassignedRoot)?;
    let env = Env {
        tree,
        space,
        plan,
        machine,
        inputs,
        funcs,
        threads: threads.max(1),
    };
    let mut counters = Counters::new(machine.grid.num_processors());
    let sharded = env.eval(&mut counters, tree.root, &root_alpha)?;
    let result = gather(&sharded, space, &machine.grid);
    Ok(report_from(result, counters))
}

fn report_from(result: Tensor, c: Counters) -> ShardExecReport {
    ShardExecReport {
        result,
        moved_elements: c.moved,
        predicted_move_elements: c.predicted,
        reduce_words: c.reduce_words,
        predicted_reduce_words: c.predicted_reduce,
        redistributions: c.redistributions,
        per_rank_flops: c.per_rank_flops,
    }
}

/// [`execute_plan_sharded`] under the dependency-aware task-graph
/// scheduler: one task per tree node, dependencies following the operator
/// tree, so independent subtrees evaluate concurrently on the shared pool.
/// Admission is bounded by the sequential walk's peak live-set (in global
/// output elements), so graph scheduling never holds more node values live
/// than the recursive evaluation would.
///
/// The gathered result is **bitwise identical** to the sequential walk for
/// every `threads` value: each node's value depends only on its own
/// subtree and plan entries, every kernel is deterministic in isolation,
/// and the scheduler orders dependencies before dependents.  Measured and
/// predicted counter totals also match the sequential walk exactly —
/// per-task counters merge in ascending node order and every field is an
/// order-independent sum.
///
/// # Errors
/// Same conditions as [`execute_plan_sharded`]; everything is validated
/// before any task runs.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_sharded_graph(
    tree: &OpTree,
    space: &IndexSpace,
    plan: &DistPlan,
    machine: &Machine,
    inputs: &HashMap<TensorId, &Tensor>,
    funcs: &HashMap<String, IntegralFn>,
    threads: usize,
) -> Result<ShardExecReport, DistError> {
    use std::sync::Mutex;
    let _span = tce_trace::span("dist.exec_graph");
    let root_alpha = plan.node_dist[tree.root.0 as usize]
        .clone()
        .ok_or(DistError::UnassignedRoot)?;
    let env = Env {
        tree,
        space,
        plan,
        machine,
        inputs,
        funcs,
        threads: threads.max(1),
    };
    let alphas = env.assign_alphas(root_alpha)?;

    let order = tree.postorder();
    let mut graph = tce_par::TaskGraph::new();
    let mut task_of = vec![usize::MAX; tree.len()];
    for &u in &order {
        let deps: Vec<usize> = match &tree.node(u).kind {
            OpKind::Contract { left, right } => {
                vec![task_of[left.0 as usize], task_of[right.0 as usize]]
            }
            _ => Vec::new(),
        };
        let weight: u64 = tree
            .node(u)
            .indices
            .iter()
            .map(|v| space.extent(v) as u64)
            .product::<u64>()
            .max(1);
        task_of[u.0 as usize] = graph.add_task(&deps, weight);
    }
    let cap = graph.sequential_peak();

    let ranks = machine.grid.num_processors();
    let slots: Vec<Mutex<Option<ShardedTensor>>> = order.iter().map(|_| Mutex::new(None)).collect();
    let task_counters: Vec<Mutex<Counters>> = order
        .iter()
        .map(|_| Mutex::new(Counters::new(ranks)))
        .collect();
    graph.run(threads, Some(cap), &|t| {
        let u = order[t];
        let alpha = alphas[u.0 as usize]
            .as_ref()
            .expect("alpha pre-pass covers every node");
        let mut c = Counters::new(ranks);
        let (lv, rv) = match &tree.node(u).kind {
            OpKind::Contract { left, right } => {
                let lv = slots[task_of[left.0 as usize]]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take();
                let rv = slots[task_of[right.0 as usize]]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take();
                (lv, rv)
            }
            _ => (None, None),
        };
        let value = env
            .eval_node(&mut c, u, alpha, lv, rv)
            .expect("bindings and plan entries validated before scheduling");
        *slots[t].lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
        *task_counters[t].lock().unwrap_or_else(|e| e.into_inner()) = c;
    });

    let mut counters = Counters::new(ranks);
    for tc in &task_counters {
        counters.merge(&tc.lock().unwrap_or_else(|e| e.into_inner()));
    }
    let sharded = slots[task_of[tree.root.0 as usize]]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .expect("root task completed");
    let result = gather(&sharded, space, &machine.grid);
    Ok(report_from(result, counters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::enumerate_tuples;

    fn setup(n: usize) -> (IndexSpace, IndexVar, IndexVar, IndexVar) {
        let mut sp = IndexSpace::new();
        let r = sp.add_range("N", n);
        let i = sp.add_var("i", r);
        let j = sp.add_var("j", r);
        let k = sp.add_var("k", r);
        (sp, i, j, k)
    }

    #[test]
    fn scatter_gather_roundtrip_all_tuples() {
        let (sp, i, j, _) = setup(7);
        let grid = ProcessorGrid::new(vec![2, 3]);
        let t = Tensor::random(&[7, 7], 3);
        let dims = [i, j];
        for tuple in enumerate_tuples(IndexSet::from_vars(dims), 2) {
            let sharded = scatter(&t, &dims, &tuple, &sp, &grid);
            let back = gather(&sharded, &sp, &grid);
            assert_eq!(back, t, "tuple {}", tuple.display(&sp));
        }
    }

    #[test]
    fn redistribute_matches_move_cost_for_all_pairs() {
        // Exhaustive (β, α) sweep at a small extent: the measured block
        // traffic must equal the closed-form model, and data must survive.
        let (sp, i, j, _) = setup(5);
        let grid = ProcessorGrid::new(vec![2, 3]);
        let t = Tensor::random(&[5, 5], 9);
        let dims = [i, j];
        let tuples = enumerate_tuples(IndexSet::from_vars(dims), 2);
        for beta in &tuples {
            let sharded = scatter(&t, &dims, beta, &sp, &grid);
            for alpha in &tuples {
                let (re, moved) = redistribute(&sharded, alpha, &sp, &grid);
                let predicted = move_cost(&dims, &sp, &grid, beta, alpha);
                assert_eq!(
                    moved,
                    predicted,
                    "β={} α={}",
                    beta.display(&sp),
                    alpha.display(&sp)
                );
                assert_eq!(gather(&re, &sp, &grid), t);
            }
        }
    }

    #[test]
    fn uneven_extents_still_roundtrip_and_match_model() {
        // 5 elements over 3 processors exercises the uneven myrange split.
        let (sp, i, j, _) = setup(5);
        let grid = ProcessorGrid::new(vec![3]);
        let t = Tensor::random(&[5, 5], 4);
        let dims = [i, j];
        let from = DistTuple(vec![DistEntry::Idx(i)]);
        let to = DistTuple(vec![DistEntry::Idx(j)]);
        let sharded = scatter(&t, &dims, &from, &sp, &grid);
        let (re, moved) = redistribute(&sharded, &to, &sp, &grid);
        assert_eq!(moved, move_cost(&dims, &sp, &grid, &from, &to));
        assert_eq!(gather(&re, &sp, &grid), t);
    }

    #[test]
    fn more_processors_than_elements() {
        let (sp, i, j, _) = setup(2);
        let grid = ProcessorGrid::new(vec![5]);
        let t = Tensor::random(&[2, 2], 5);
        let dims = [i, j];
        let tup = DistTuple(vec![DistEntry::Idx(i)]);
        let sharded = scatter(&t, &dims, &tup, &sp, &grid);
        // Ranks 2..5 own nothing.
        assert!(sharded.shards[2].is_none());
        assert_eq!(gather(&sharded, &sp, &grid), t);
        let (re, moved) = redistribute(&sharded, &DistTuple::all_one(1), &sp, &grid);
        assert_eq!(
            moved,
            move_cost(&dims, &sp, &grid, &tup, &DistTuple::all_one(1))
        );
        assert_eq!(gather(&re, &sp, &grid), t);
    }

    #[test]
    fn sharded_matmul_matches_sequential_for_all_gammas() {
        let (sp, i, j, k) = setup(6);
        let grid = ProcessorGrid::new(vec![2, 2]);
        let a = Tensor::random(&[6, 6], 1);
        let b = Tensor::random(&[6, 6], 2);
        let spec = BinaryContraction {
            a: vec![i, k],
            b: vec![k, j],
            out: vec![i, j],
        };
        let expect = tce_tensor::contract_gett(&spec, &sp, &a, &b, 1);
        let sums = k.singleton();
        for gamma in enumerate_tuples(IndexSet::from_vars([i, j, k]), 2) {
            for mode in [ReduceMode::Combine, ReduceMode::Replicate] {
                let sa = scatter(
                    &a,
                    &[i, k],
                    &gamma.project(IndexSet::from_vars([i, k])),
                    &sp,
                    &grid,
                );
                let sb = scatter(
                    &b,
                    &[k, j],
                    &gamma.project(IndexSet::from_vars([k, j])),
                    &sp,
                    &grid,
                );
                let (mut out, _) = contract_sharded(&sa, &sb, &[i, j], &sp, &grid, &gamma, 4);
                let words = reduce_partial_sums(&mut out, sums, &sp, &grid, mode);
                let predicted =
                    reduce_cost(IndexSet::from_vars([i, j]), sums, &sp, &grid, &gamma, mode);
                assert_eq!(words, predicted, "γ = {}", gamma.display(&sp));
                let got = gather(&out, &sp, &grid);
                assert!(
                    got.approx_eq(&expect, 1e-10),
                    "γ = {} mode {:?}",
                    gamma.display(&sp),
                    mode
                );
            }
        }
    }

    #[test]
    fn output_partitioned_contraction_is_bitwise() {
        // γ distributes only output indices: every rank computes a
        // disjoint slice of C with the full k-accumulation order of the
        // sequential kernel, so the gathered result is bit-identical.
        let (sp, i, j, k) = setup(13);
        let grid = ProcessorGrid::new(vec![2, 3]);
        let a = Tensor::random(&[13, 13], 11);
        let b = Tensor::random(&[13, 13], 12);
        let spec = BinaryContraction {
            a: vec![i, k],
            b: vec![k, j],
            out: vec![i, j],
        };
        let expect = tce_tensor::contract_gett(&spec, &sp, &a, &b, 1);
        let gamma = DistTuple(vec![DistEntry::Idx(i), DistEntry::Idx(j)]);
        let sa = scatter(
            &a,
            &[i, k],
            &gamma.project(IndexSet::from_vars([i, k])),
            &sp,
            &grid,
        );
        let sb = scatter(
            &b,
            &[k, j],
            &gamma.project(IndexSet::from_vars([k, j])),
            &sp,
            &grid,
        );
        let (mut out, flops) = contract_sharded(&sa, &sb, &[i, j], &sp, &grid, &gamma, 4);
        let words = reduce_partial_sums(&mut out, k.singleton(), &sp, &grid, ReduceMode::Combine);
        assert_eq!(words, 0, "no distributed summation index");
        assert_eq!(gather(&out, &sp, &grid), expect);
        // All six ranks worked.
        assert_eq!(flops.iter().filter(|&&f| f > 0).count(), 6);
    }
}
