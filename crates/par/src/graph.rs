//! Dependency-aware task-graph scheduling on the shared worker pool.
//!
//! The executors walk operation trees in a fixed postorder, so independent
//! subtrees never overlap even when the pool sits idle between GETT calls.
//! A [`TaskGraph`] makes the dependence structure explicit: tasks are added
//! in a topological order (every dependency precedes its dependent), and
//! [`TaskGraph::run`] dispatches ready tasks onto [`crate::Pool`] scheduler
//! slots, bounded by a *live-set cap* so concurrent execution never holds
//! more intermediate storage than the caller's memory model allows.
//!
//! Accounting model: admitting task `t` makes `weight(t)` units live (its
//! output buffer); the units are released once **all** of `t`'s dependents
//! have completed (the last consumer frees the operand).  Tasks with no
//! dependents — roots whose value is the result — stay live to the end.
//! [`TaskGraph::sequential_peak`] simulates ascending-index execution under
//! exactly this accounting, so using it as the cap always admits at least
//! the sequential order and the scheduler cannot wedge on the bound.  As a
//! belt-and-braces guarantee, when no task fits under the cap and nothing
//! is running, the lowest-index ready task is admitted anyway and counted
//! in [`GraphStats::forced_admissions`].
//!
//! Determinism: the scheduler changes only *when* tasks run, never what
//! they compute.  Task bodies must write disjoint state (the same contract
//! as [`crate::Pool::run`]); completion of every dependency *happens-before*
//! a dependent starts (the scheduler mutex orders them), so each task sees
//! fully written operands.  Bitwise-identical results for every worker
//! count then follow from each task being deterministic in isolation.

use crate::pool::Pool;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// Observed scheduling metrics for one [`TaskGraph::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Tasks executed.
    pub tasks: u64,
    /// Dependency edges in the graph.
    pub edges: u64,
    /// Peak live weight observed under the accounting model.
    pub peak_live: u64,
    /// The cap the run was bounded by (`u64::MAX` when unbounded).
    pub cap: u64,
    /// Times the forced-progress escape admitted a task over the cap.
    pub forced_admissions: u64,
}

/// Scheduler state guarded by one mutex (tasks do their real work outside
/// the lock; this only orders admissions and completions).
struct Sched {
    /// The live-set bound tasks are admitted under.
    cap: u64,
    /// Unmet dependency count per task.
    indegree: Vec<usize>,
    /// Dependents not yet completed per task (release weight at zero).
    pending_dependents: Vec<usize>,
    /// Ready tasks as a min-heap on task index: admission order is the
    /// topological insertion order whenever there is a choice.
    ready: BinaryHeap<Reverse<usize>>,
    live: u64,
    peak_live: u64,
    running: usize,
    completed: usize,
    forced_admissions: u64,
    /// A task body panicked; re-raised once after the run drains.
    panicked: bool,
}

/// A directed acyclic graph of tasks with weights, executed by
/// [`TaskGraph::run`].  See the module docs for the scheduling and
/// live-set accounting model.
#[derive(Debug, Default)]
pub struct TaskGraph {
    deps: Vec<Vec<usize>>,
    dependents: Vec<Vec<usize>>,
    weight: Vec<u64>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task depending on `deps` (indices of previously added tasks)
    /// whose output occupies `weight` live units; returns its index.
    ///
    /// # Panics
    /// Panics if a dependency index is not smaller than the new task's —
    /// tasks must be added in topological order.
    pub fn add_task(&mut self, deps: &[usize], weight: u64) -> usize {
        let id = self.deps.len();
        for &d in deps {
            assert!(d < id, "dependency {d} of task {id} not yet added");
            self.dependents[d].push(id);
        }
        self.deps.push(deps.to_vec());
        self.dependents.push(Vec::new());
        self.weight.push(weight);
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether no tasks were added.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }

    /// Peak live weight of executing tasks one at a time in ascending
    /// index order under the run's accounting model — the natural cap for
    /// [`TaskGraph::run`]: it reproduces the sequential executor's
    /// high-water mark, so graph scheduling is admitted to exactly the
    /// memory the sequential walk would have used.
    pub fn sequential_peak(&self) -> u64 {
        let mut pending: Vec<usize> = self.dependents.iter().map(Vec::len).collect();
        let mut live = 0u64;
        let mut peak = 0u64;
        for t in 0..self.len() {
            live += self.weight[t];
            peak = peak.max(live);
            for &d in &self.deps[t] {
                pending[d] -= 1;
                if pending[d] == 0 {
                    live -= self.weight[d];
                }
            }
        }
        peak
    }

    /// Execute every task on up to `threads` scheduler slots over the
    /// shared pool, admitting a ready task only while `live + weight ≤
    /// cap` (no bound when `cap` is `None`).  `body(t)` runs exactly once
    /// per task, after all of `t`'s dependencies completed.  Panicking
    /// bodies are recorded and re-raised once after the run drains, like
    /// [`Pool::run`].
    pub fn run(
        &self,
        threads: usize,
        cap: Option<u64>,
        body: &(dyn Fn(usize) + Sync),
    ) -> GraphStats {
        let n = self.len();
        let cap = cap.unwrap_or(u64::MAX);
        let mut stats = GraphStats {
            tasks: n as u64,
            edges: self.edge_count() as u64,
            peak_live: 0,
            cap,
            forced_admissions: 0,
        };
        if n == 0 {
            return stats;
        }
        let indegree: Vec<usize> = self.deps.iter().map(Vec::len).collect();
        let ready: BinaryHeap<Reverse<usize>> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(t, _)| Reverse(t))
            .collect();
        let sched = Mutex::new(Sched {
            cap,
            indegree,
            pending_dependents: self.dependents.iter().map(Vec::len).collect(),
            ready,
            live: 0,
            peak_live: 0,
            running: 0,
            completed: 0,
            forced_admissions: 0,
            panicked: false,
        });
        let wake = Condvar::new();

        let slots = threads.max(1).min(n);
        let pool = Pool::global();
        pool.ensure_workers(slots - 1);
        pool.run(slots, &|_slot| self.scheduler_slot(&sched, &wake, body));

        let s = sched.into_inner().unwrap_or_else(|e| e.into_inner());
        stats.peak_live = s.peak_live;
        stats.forced_admissions = s.forced_admissions;
        if tce_trace::enabled() {
            tce_trace::counter("sched.tasks", stats.tasks);
            tce_trace::counter("sched.edges", stats.edges);
            tce_trace::counter("sched.peak_live", stats.peak_live);
            tce_trace::counter("sched.forced_admissions", stats.forced_admissions);
        }
        if s.panicked {
            panic!("task-graph body panicked");
        }
        stats
    }

    /// One scheduler slot: admit → execute → retire, until all tasks have
    /// completed.  Runs concurrently on every pool slot; all bookkeeping
    /// happens under the `sched` mutex, task bodies run unlocked.
    fn scheduler_slot(&self, sched: &Mutex<Sched>, wake: &Condvar, body: &(dyn Fn(usize) + Sync)) {
        let n = self.len();
        let mut s = sched.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if s.completed == n {
                wake.notify_all();
                return;
            }
            // Admission: the lowest-index ready task, if it fits under the
            // cap — or unconditionally when nothing is running (forced
            // progress; without it an undersized cap could wedge the run).
            let admit = match s.ready.peek() {
                Some(&Reverse(t)) => {
                    if s.live.saturating_add(self.weight[t]) <= s.cap {
                        Some((t, false))
                    } else if s.running == 0 {
                        Some((t, true))
                    } else {
                        None
                    }
                }
                None => None,
            };
            let Some((t, forced)) = admit else {
                s = wake.wait(s).unwrap_or_else(|e| e.into_inner());
                continue;
            };
            s.ready.pop();
            if forced {
                s.forced_admissions += 1;
            }
            s.live += self.weight[t];
            s.peak_live = s.peak_live.max(s.live);
            s.running += 1;
            drop(s);

            if catch_unwind(AssertUnwindSafe(|| body(t))).is_err() {
                sched.lock().unwrap_or_else(|e| e.into_inner()).panicked = true;
            }

            s = sched.lock().unwrap_or_else(|e| e.into_inner());
            s.running -= 1;
            s.completed += 1;
            // Retire: operands whose last consumer this was go dead.
            for &d in &self.deps[t] {
                s.pending_dependents[d] -= 1;
                if s.pending_dependents[d] == 0 {
                    s.live -= self.weight[d];
                }
            }
            // Unblock dependents.
            for &d in &self.dependents[t] {
                s.indegree[d] -= 1;
                if s.indegree[d] == 0 {
                    s.ready.push(Reverse(d));
                }
            }
            wake.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    /// A diamond: 0 and 1 independent, 2 reads both, 3 reads 2.
    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task(&[], 10);
        let b = g.add_task(&[], 10);
        let c = g.add_task(&[a, b], 5);
        g.add_task(&[c], 1);
        g
    }

    #[test]
    fn every_task_runs_exactly_once_after_its_deps() {
        for threads in [1, 2, 4, 8] {
            let g = diamond();
            let ran: Vec<AtomicUsize> = (0..g.len()).map(|_| AtomicUsize::new(0)).collect();
            let order = Mutex::new(Vec::new());
            let stats = g.run(threads, None, &|t| {
                ran[t].fetch_add(1, Ordering::SeqCst);
                order.lock().unwrap().push(t);
            });
            assert!(ran.iter().all(|r| r.load(Ordering::SeqCst) == 1));
            assert_eq!(stats.tasks, 4);
            assert_eq!(stats.edges, 3);
            let order = order.into_inner().unwrap();
            let pos = |t: usize| order.iter().position(|&x| x == t).unwrap();
            assert!(pos(2) > pos(0) && pos(2) > pos(1));
            assert!(pos(3) > pos(2));
        }
    }

    #[test]
    fn sequential_peak_matches_hand_accounting() {
        // Diamond, ascending order: 0 (live 10), 1 (20), 2 (25; then 0 and
        // 1 retire → 5), 3 (6; 2 retires → 1).  Peak is 25.
        assert_eq!(diamond().sequential_peak(), 25);
        // A chain frees each operand as soon as its one consumer finishes.
        let mut chain = TaskGraph::new();
        let mut prev = chain.add_task(&[], 7);
        for _ in 0..5 {
            prev = chain.add_task(&[prev], 7);
        }
        assert_eq!(chain.sequential_peak(), 14);
    }

    #[test]
    fn live_set_never_exceeds_sequential_peak_cap() {
        // Wide fan-in: 8 independent leaves feeding one sink.  Unbounded,
        // all leaves can be live at once (80); under the sequential-peak
        // cap the observed peak must stay at or below it.
        let mut g = TaskGraph::new();
        let leaves: Vec<usize> = (0..8).map(|_| g.add_task(&[], 10)).collect();
        g.add_task(&leaves, 1);
        let cap = g.sequential_peak();
        assert_eq!(cap, 81); // all leaves live until the sink retires them
        let mut narrow = TaskGraph::new();
        let a = narrow.add_task(&[], 10);
        let b = narrow.add_task(&[a], 10);
        let c = narrow.add_task(&[], 10);
        let d = narrow.add_task(&[c], 10);
        narrow.add_task(&[b, d], 1);
        // Ascending order: a(10), b(20, frees a→10), c(20), d(30, frees
        // c→20), sink(21, frees b,d→1) — peak 30.
        let seq_cap = narrow.sequential_peak();
        assert_eq!(seq_cap, 30);
        for threads in [1, 2, 8] {
            let stats = narrow.run(threads, Some(seq_cap), &|_| {});
            assert!(
                stats.peak_live <= seq_cap || stats.forced_admissions > 0,
                "peak {} over cap {} without forced admission",
                stats.peak_live,
                seq_cap
            );
        }
    }

    #[test]
    fn undersized_cap_forces_progress_instead_of_deadlocking() {
        let mut g = TaskGraph::new();
        let a = g.add_task(&[], 100);
        g.add_task(&[a], 100);
        let stats = g.run(4, Some(1), &|_| {});
        assert_eq!(stats.tasks, 2);
        assert!(stats.forced_admissions >= 1);
    }

    #[test]
    fn completion_happens_before_dependents_observe_writes() {
        // Data actually flows along edges: each task sums its deps' slots
        // plus one.  Any missed happens-before would read a stale zero.
        let n = 200;
        let mut g = TaskGraph::new();
        for t in 0..n {
            let deps: Vec<usize> = (0..t).filter(|d| t % (d + 2) == 0).collect();
            g.add_task(&deps, 1);
        }
        let expect: Vec<u64> = {
            let mut v = vec![0u64; n];
            for t in 0..n {
                v[t] = 1
                    + (0..t)
                        .filter(|d| t % (d + 2) == 0)
                        .map(|d| v[d])
                        .sum::<u64>();
            }
            v
        };
        for threads in [1, 3, 8] {
            let slots: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            g.run(threads, Some(g.sequential_peak()), &|t| {
                let sum: u64 = (0..t)
                    .filter(|d| t % (d + 2) == 0)
                    .map(|d| slots[d].load(Ordering::Acquire))
                    .sum();
                slots[t].store(sum + 1, Ordering::Release);
            });
            let got: Vec<u64> = slots.iter().map(|s| s.load(Ordering::SeqCst)).collect();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = TaskGraph::new();
        let stats = g.run(4, Some(0), &|_| panic!("no tasks"));
        assert_eq!(stats.tasks, 0);
    }

    #[test]
    fn panicking_body_propagates_and_completes_the_run() {
        let mut g = TaskGraph::new();
        let a = g.add_task(&[], 1);
        g.add_task(&[a], 1);
        g.add_task(&[], 1);
        let hits = AtomicUsize::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            g.run(2, None, &|t| {
                hits.fetch_add(1, Ordering::SeqCst);
                if t == 0 {
                    panic!("boom");
                }
            })
        }));
        assert!(r.is_err(), "panic must re-raise after the drain");
        assert_eq!(hits.load(Ordering::SeqCst), 3, "all tasks still ran");
    }

    #[test]
    #[should_panic(expected = "not yet added")]
    fn forward_dependency_is_rejected() {
        let mut g = TaskGraph::new();
        g.add_task(&[3], 1);
    }
}
