//! Quickstart: compile a tensor-contraction specification, run the full
//! synthesis pipeline, and execute the generated loop program.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::collections::HashMap;
use tce_core::tensor::Tensor;
use tce_core::{synthesize, SynthesisConfig};

fn main() {
    // A three-matrix chain with skewed extents — the classic case where
    // the contraction order matters.
    let src = "
        range M = 40;      # rows
        range K = 400;     # large shared dimension
        index i : M;
        index j, l : K;
        index k : M;
        tensor A(M, K);
        tensor B(K, M);
        tensor C(M, K);
        tensor S(M, K);
        S[i,l] = sum[j,k] A[i,j] * B[j,k] * C[k,l];
    ";

    let syn = synthesize(src, &SynthesisConfig::default()).expect("synthesis failed");
    let plan = &syn.plans[0];
    let space = &syn.program.space;

    println!("--- synthesis report ---");
    println!("{}", plan.report(space, &syn.program));

    println!(
        "operation reduction: {} (direct) -> {} (optimized), {:.1}x",
        plan.direct_ops,
        plan.tree_ops,
        plan.direct_ops as f64 / plan.tree_ops as f64
    );

    // Execute the synthesized program on real data and verify against the
    // naive reference evaluation.
    let a = Tensor::random(&[40, 400], 1);
    let b = Tensor::random(&[400, 40], 2);
    let c = Tensor::random(&[40, 400], 3);
    let mut inputs = HashMap::new();
    inputs.insert(syn.program.tensors.by_name("A").unwrap(), &a);
    inputs.insert(syn.program.tensors.by_name("B").unwrap(), &b);
    inputs.insert(syn.program.tensors.by_name("C").unwrap(), &c);
    let got = plan.execute(space, &inputs, &HashMap::new()).unwrap();

    let v = |n: &str| space.var_by_name(n).unwrap();
    let spec = tce_core::tensor::EinsumSpec::new(
        vec![v("i"), v("l")],
        vec![
            vec![v("i"), v("j")],
            vec![v("j"), v("k")],
            vec![v("k"), v("l")],
        ],
        space.parse_set("j,k").unwrap(),
    )
    .unwrap();
    let expect = spec.eval(space, &[&a, &b, &c]);
    let diff = got.max_abs_diff(&expect);
    println!("verification: max |synthesized - reference| = {diff:.3e}");
    assert!(diff < 1e-8, "verification failed");
    println!("OK");
}
