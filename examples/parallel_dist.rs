//! Data distribution and communication minimization (paper §7).
//!
//! Reproduces the section's worked examples — the `B[j,k,t]` ownership
//! under `⟨k,*,1⟩` on a 2×4×8 grid and the `T1`/`T2` redistribution
//! asymmetry — then runs the distribution DP on a contraction sequence
//! and validates the chosen plan on the simulated distributed machine.
//!
//! ```sh
//! cargo run --release --example parallel_dist
//! ```

use tce_core::dist::{
    move_cost, optimize_distribution, simulate_contraction, DistEntry, DistTuple, Machine,
};
use tce_core::ir::{IndexSet, IndexSpace, TensorDecl, TensorTable};
use tce_core::par::ProcessorGrid;
use tce_core::tensor::Tensor;

fn main() {
    // --- the paper's ownership example ---
    let mut sp = IndexSpace::new();
    let rn = sp.add_range("N", 16);
    let j = sp.add_var("j", rn);
    let k = sp.add_var("k", rn);
    let t = sp.add_var("t", rn);
    let grid = ProcessorGrid::new(vec![2, 4, 8]);
    let alpha = DistTuple(vec![
        DistEntry::Idx(k),
        DistEntry::Replicate,
        DistEntry::One,
    ]);
    println!(
        "== §7 ownership example: B[j,k,t] with {} on a 2×4×8 grid ==",
        alpha.display(&sp)
    );
    for coords in [[0usize, 0, 0], [1, 2, 0], [1, 2, 3]] {
        let held = alpha.local_elements(&[j, k, t], &sp, &grid, &coords);
        println!(
            "  P({},{},{}) holds {} elements{}",
            coords[0],
            coords[1],
            coords[2],
            held,
            if held > 0 {
                format!(
                    " — B[0..16, {:?}, 0..16]",
                    alpha.owned_range(k, &sp, &grid, &coords)
                )
            } else {
                String::new()
            }
        );
    }

    // --- the paper's redistribution example ---
    let t1_from = DistTuple(vec![DistEntry::One, DistEntry::Idx(t), DistEntry::Idx(j)]);
    let t2_from = DistTuple(vec![
        DistEntry::Idx(j),
        DistEntry::Replicate,
        DistEntry::One,
    ]);
    let to = DistTuple(vec![DistEntry::Idx(j), DistEntry::Idx(t), DistEntry::One]);
    println!("\n== §7 redistribution example (arrays T1[j,t], T2[j,t]) ==");
    println!(
        "  T1 {} → {}: {} elements must move",
        t1_from.display(&sp),
        to.display(&sp),
        move_cost(&[j, t], &sp, &grid, &t1_from, &to)
    );
    println!(
        "  T2 {} → {}: {} elements must move (each processor just gives up part of t)",
        t2_from.display(&sp),
        to.display(&sp),
        move_cost(&[j, t], &sp, &grid, &t2_from, &to)
    );

    // --- the DP on a two-contraction sequence ---
    let mut space = IndexSpace::new();
    let r = space.add_range("N", 32);
    let (i, jj, kk, l) = (
        space.add_var("i", r),
        space.add_var("j", r),
        space.add_var("k", r),
        space.add_var("l", r),
    );
    let mut tensors = TensorTable::new();
    let ta = tensors.add(TensorDecl::dense("A", vec![r, r]));
    let tb = tensors.add(TensorDecl::dense("B", vec![r, r]));
    let tc = tensors.add(TensorDecl::dense("C", vec![r, r]));
    let mut tree = tce_core::ir::OpTree::new();
    let la = tree.leaf_input(ta, vec![i, jj]);
    let lb = tree.leaf_input(tb, vec![jj, kk]);
    let ab = tree.contract(la, lb, IndexSet::from_vars([i, kk]));
    let lc = tree.leaf_input(tc, vec![kk, l]);
    tree.contract(ab, lc, IndexSet::from_vars([i, l]));

    println!("\n== distribution DP on S[i,l] = Σ (A·B)·C, 2×2 grid ==");
    // A fast interconnect (1 word ≈ 1 flop): at N = 32 the communication
    // of operand replication is worth the 4× computation speedup.  (With
    // the default 100× word cost the DP correctly keeps everything on one
    // processor at this problem size.)
    let machine = Machine {
        grid: ProcessorGrid::new(vec![2, 2]),
        word_cost: 1,
    };
    let plan = optimize_distribution(&tree, &space, &machine);
    println!("  total modeled cost: {}", plan.total_cost);
    for id in tree.internal_postorder() {
        let (gamma, mode) = plan.node_gamma[id.0 as usize].as_ref().unwrap();
        println!(
            "  node {:>2}: loop distribution {} (reduce: {:?}), result {}",
            id.0,
            gamma.display(&space),
            mode,
            plan.node_dist[id.0 as usize]
                .as_ref()
                .unwrap()
                .display(&space)
        );
    }
    // Sequential comparison: a 1×1 grid.
    let seq = optimize_distribution(
        &tree,
        &space,
        &Machine {
            grid: ProcessorGrid::new(vec![1]),
            word_cost: 1,
        },
    );
    println!(
        "  sequential cost {} → parallel cost {} ({:.2}× speedup in the model)",
        seq.total_cost,
        plan.total_cost,
        seq.total_cost as f64 / plan.total_cost as f64
    );
    assert!(plan.total_cost < seq.total_cost, "parallel plan must win");

    // --- validate one distributed contraction on the simulated machine ---
    println!("\n== simulated distributed execution of A·B under the chosen γ ==");
    let a = Tensor::random(&[32, 32], 1);
    let b = Tensor::random(&[32, 32], 2);
    let (gamma, _) = plan.node_gamma[ab.0 as usize].as_ref().unwrap();
    let (got, stats) = simulate_contraction(
        &[i, jj],
        &[jj, kk],
        &[i, kk],
        &space,
        &machine.grid,
        gamma,
        &a,
        &b,
    );
    let spec = tce_core::tensor::BinaryContraction {
        a: vec![i, jj],
        b: vec![jj, kk],
        out: vec![i, kk],
    };
    let expect = tce_core::tensor::contract_gemm(&spec, &space, &a, &b);
    println!(
        "  max local iterations {} (sequential would be {}), result max diff {:.2e}",
        stats.max_local_iterations,
        32u64.pow(3),
        got.max_abs_diff(&expect)
    );
    assert!(got.approx_eq(&expect, 1e-9));
    println!("OK");
}
