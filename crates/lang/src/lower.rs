//! Semantic analysis: lower the raw AST to a validated [`tce_ir::Program`].

use crate::ast::*;
use crate::token::LangError;
use std::collections::HashMap;
use tce_ir::{
    Assignment, Factor, FuncEval, IndexSet, IndexSpace, Product, Program, SymmetryGroup,
    TensorDecl, TensorRef,
};

/// Lower a parsed source file to the IR, checking all references.
pub fn lower(file: &SourceFile) -> Result<Program, LangError> {
    let mut prog = Program::default();
    let mut funcs: HashMap<String, FuncDecl> = HashMap::new();

    for item in &file.items {
        match item {
            Item::Range(r) => {
                if prog.space.range_by_name(&r.name).is_some() {
                    return Err(LangError::at(
                        r.line,
                        1,
                        format!("range `{}` already declared", r.name),
                    ));
                }
                prog.space.add_range(&r.name, r.extent as usize);
            }
            Item::Index(d) => {
                let range = prog.space.range_by_name(&d.range).ok_or_else(|| {
                    LangError::at(d.line, 1, format!("unknown range `{}`", d.range))
                })?;
                for name in &d.names {
                    if prog.space.var_by_name(name).is_some() {
                        return Err(LangError::at(
                            d.line,
                            1,
                            format!("index `{name}` already declared"),
                        ));
                    }
                    prog.space.add_var(name, range);
                }
            }
            Item::Tensor(t) => {
                if prog.tensors.by_name(&t.name).is_some() {
                    return Err(LangError::at(
                        t.line,
                        1,
                        format!("tensor `{}` already declared", t.name),
                    ));
                }
                let dims = t
                    .dims
                    .iter()
                    .map(|d| {
                        prog.space
                            .range_by_name(d)
                            .ok_or_else(|| LangError::at(t.line, 1, format!("unknown range `{d}`")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let decl = TensorDecl {
                    name: t.name.clone(),
                    dims,
                    symmetry: t
                        .symmetry
                        .iter()
                        .map(|s| SymmetryGroup {
                            positions: s.positions.clone(),
                            antisymmetric: s.antisymmetric,
                        })
                        .collect(),
                    sparse: t.sparse,
                };
                decl.validate().map_err(|e| LangError::at(t.line, 1, e))?;
                prog.tensors.add(decl);
            }
            Item::Function(f) => {
                if funcs.contains_key(&f.name) {
                    return Err(LangError::at(
                        f.line,
                        1,
                        format!("function `{}` already declared", f.name),
                    ));
                }
                for arg in &f.args {
                    if prog.space.range_by_name(arg).is_none() {
                        return Err(LangError::at(f.line, 1, format!("unknown range `{arg}`")));
                    }
                }
                funcs.insert(f.name.clone(), f.clone());
            }
            Item::Stmt(s) => {
                let stmt = lower_stmt(s, &prog.space, &prog.tensors, &funcs)?;
                stmt.validate(&prog.space, &prog.tensors)
                    .map_err(|e| LangError::at(s.line, 1, e))?;
                prog.stmts.push(stmt);
            }
        }
    }
    Ok(prog)
}

fn lower_indices(
    names: &[String],
    space: &IndexSpace,
    line: u32,
) -> Result<Vec<tce_ir::IndexVar>, LangError> {
    names
        .iter()
        .map(|n| {
            space
                .var_by_name(n)
                .ok_or_else(|| LangError::at(line, 1, format!("unknown index `{n}`")))
        })
        .collect()
}

fn lower_stmt(
    s: &StmtAst,
    space: &IndexSpace,
    tensors: &tce_ir::TensorTable,
    funcs: &HashMap<String, FuncDecl>,
) -> Result<Assignment, LangError> {
    let lhs_tensor = tensors
        .by_name(&s.lhs)
        .ok_or_else(|| LangError::at(s.line, 1, format!("unknown tensor `{}`", s.lhs)))?;
    let lhs = TensorRef::new(lhs_tensor, lower_indices(&s.lhs_indices, space, s.line)?);
    let sum_indices = IndexSet::from_vars(lower_indices(&s.sum_indices, space, s.line)?);

    let mut terms = Vec::with_capacity(s.terms.len());
    for term in &s.terms {
        let mut factors = Vec::with_capacity(term.factors.len());
        for factor in &term.factors {
            match factor {
                FactorAst::Tensor { name, indices } => {
                    let id = tensors.by_name(name).ok_or_else(|| {
                        LangError::at(s.line, 1, format!("unknown tensor `{name}`"))
                    })?;
                    factors.push(Factor::Tensor(TensorRef::new(
                        id,
                        lower_indices(indices, space, s.line)?,
                    )));
                }
                FactorAst::Func { name, indices } => {
                    let decl = funcs.get(name).ok_or_else(|| {
                        LangError::at(s.line, 1, format!("unknown function `{name}`"))
                    })?;
                    let vars = lower_indices(indices, space, s.line)?;
                    if vars.len() != decl.args.len() {
                        return Err(LangError::at(
                            s.line,
                            1,
                            format!(
                                "function `{name}` takes {} arguments, called with {}",
                                decl.args.len(),
                                vars.len()
                            ),
                        ));
                    }
                    for (pos, (&v, arg)) in vars.iter().zip(&decl.args).enumerate() {
                        let expected = space.range_by_name(arg).expect("checked at declaration");
                        if space.range_of(v) != expected {
                            return Err(LangError::at(
                                s.line,
                                1,
                                format!(
                                    "argument {pos} of `{name}` expects range `{arg}`, got index `{}`",
                                    space.var_name(v)
                                ),
                            ));
                        }
                    }
                    factors.push(Factor::Func(FuncEval {
                        name: name.clone(),
                        indices: vars,
                        cost_per_eval: decl.cost,
                    }));
                }
            }
        }
        terms.push(Product {
            coeff: term.coeff,
            factors,
        });
    }

    Ok(Assignment {
        lhs,
        accumulate: s.accumulate,
        sum_indices,
        terms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile(src: &str) -> Result<Program, LangError> {
        lower(&parse(src)?)
    }

    const SECTION2: &str = "
        range N = 10;
        index a, b, c, d, e, f, i, j, k, l : N;
        tensor A(N, N, N, N);
        tensor B(N, N, N, N);
        tensor C(N, N, N, N);
        tensor D(N, N, N, N);
        tensor S(N, N, N, N);
        S[a,b,i,j] = sum[c,d,e,f,k,l] A[a,c,i,k] * B[b,e,f,l] * C[d,f,j,k] * D[c,d,e,l];
    ";

    #[test]
    fn lowers_section2_and_costs_match_paper() {
        let prog = compile(SECTION2).unwrap();
        prog.validate().unwrap();
        assert_eq!(prog.stmts.len(), 1);
        // Direct translation costs 4·N^10 (paper §2).
        assert_eq!(
            prog.stmts[0].direct_op_count(&prog.space),
            4 * 10u128.pow(10)
        );
        let text = format!("{}", prog.stmts[0].display(&prog.space, &prog.tensors));
        assert_eq!(
            text,
            "S[a,b,i,j] = sum[c,d,e,f,k,l] A[a,c,i,k]*B[b,e,f,l]*C[d,f,j,k]*D[c,d,e,l]"
        );
    }

    #[test]
    fn lowers_function_calls_with_cost() {
        let src = "
            range V = 8; range O = 4;
            index c, e, b1 : V; index k : O;
            tensor Y(V, V);
            function f1(V, V, V, O) cost 1000;
            Y[c,e] += sum[b1,k] f1(c, e, b1, k) * f1(c, e, b1, k);
        ";
        let prog = compile(src).unwrap();
        match &prog.stmts[0].terms[0].factors[0] {
            Factor::Func(f) => {
                assert_eq!(f.cost_per_eval, 1000);
                assert_eq!(f.indices.len(), 4);
            }
            other => panic!("expected func, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_names() {
        assert!(compile("index a : V;")
            .unwrap_err()
            .msg
            .contains("unknown range"));
        assert!(compile("range N = 2; tensor A(M);")
            .unwrap_err()
            .msg
            .contains("unknown range"));
        assert!(
            compile("range N = 2; index i : N; tensor A(N); B[i] = A[i];")
                .unwrap_err()
                .msg
                .contains("unknown tensor")
        );
        assert!(
            compile("range N = 2; index i : N; tensor A(N); A[i] = A[q];")
                .unwrap_err()
                .msg
                .contains("unknown index")
        );
        assert!(
            compile("range N = 2; index i : N; tensor A(N); A[i] = g(i);")
                .unwrap_err()
                .msg
                .contains("unknown function")
        );
    }

    #[test]
    fn rejects_duplicate_declarations() {
        assert!(compile("range N = 2; range N = 3;")
            .unwrap_err()
            .msg
            .contains("already declared"));
        assert!(compile("range N = 2; index i : N; index i : N;")
            .unwrap_err()
            .msg
            .contains("already declared"));
        assert!(compile("range N = 2; tensor A(N); tensor A(N);")
            .unwrap_err()
            .msg
            .contains("already declared"));
        assert!(
            compile("range N = 2; function f(N) cost 1; function f(N) cost 2;")
                .unwrap_err()
                .msg
                .contains("already declared")
        );
    }

    #[test]
    fn rejects_function_arity_and_range_mismatch() {
        let base = "range V = 4; range O = 2; index a : V; index i : O; tensor S(V); function f(V, O) cost 10;";
        let arity = format!("{base} S[a] = sum[i] f(a);");
        assert!(compile(&arity).unwrap_err().msg.contains("arguments"));
        let range = format!("{base} S[a] = sum[i] f(i, i);");
        assert!(compile(&range).unwrap_err().msg.contains("expects range"));
    }

    #[test]
    fn rejects_semantic_errors_via_ir_validation() {
        // Rank mismatch is caught by Assignment::validate.
        let src = "range N = 2; index i, j : N; tensor A(N, N); tensor S(N);
                   S[i] = A[i];";
        assert!(compile(src).unwrap_err().msg.contains("rank"));
        // Free variable.
        let src2 = "range N = 2; index i, j : N; tensor A(N, N); tensor S(N);
                    S[i] = A[i,j];";
        assert!(compile(src2).is_err());
    }

    #[test]
    fn lowers_symmetry_to_ir() {
        let src = "range V = 4; tensor X(V, V) antisymmetric(0, 1);";
        let prog = compile(src).unwrap();
        let (_, decl) = prog.tensors.iter().next().unwrap();
        assert_eq!(decl.symmetry.len(), 1);
        assert!(decl.symmetry[0].antisymmetric);
        // Invalid symmetry (mixed ranges) rejected at lowering.
        let bad = "range V = 4; range O = 2; tensor X(V, O) symmetric(0, 1);";
        assert!(compile(bad).is_err());
    }

    #[test]
    fn multi_term_coefficients_survive_lowering() {
        let src = "
            range N = 3; index i, j, k : N;
            tensor A(N, N); tensor S(N, N);
            S[i,j] = sum[k] 2 * A[i,k] * A[k,j] - A[i,k] * A[k,j];
        ";
        let prog = compile(src).unwrap();
        assert_eq!(prog.stmts[0].terms[0].coeff, 2.0);
        assert_eq!(prog.stmts[0].terms[1].coeff, -1.0);
    }
}
