//! GETT-style contraction engine: packed micro-kernel GEMM over strided
//! tensor operands, parallel over disjoint output tiles.
//!
//! The executor's previous fast path (`contract_gemm`) followed the TTGT
//! recipe: permute both operands into matrix layout, multiply, permute the
//! result back.  For the high-dimensional contractions the paper targets,
//! the transposes cost as much memory traffic as the multiply.  This
//! module instead packs operands directly from their strided source
//! layouts into contiguous panels *inside* the GEMM macro-loops (the GETT
//! scheme of Springer & Bientinesi), so no full-size transpose is ever
//! materialized:
//!
//! * a [`ContractionPlan`] classifies the contraction's indices into
//!   batch/M/N/K groups and precomputes flat-offset tables mapping each
//!   group coordinate to element offsets in `a`, `b` and the output — all
//!   shape-dependent work happens once per (spec, extents, kernel)
//!   signature and is memoized in a process-wide cache ([`plan_for`]);
//! * the plan also selects its [`kernels::KernelConfig`]: the
//!   runtime-dispatched SIMD micro-kernel variant (AVX2+FMA / SSE2 /
//!   scalar, see [`crate::kernels`]) and cache-derived MC/NC/KC macro
//!   blocks, so autotuned parameters ride the plan LRU;
//! * macro-loops tile M×N; each (batch, M-tile, N-tile) task packs A and
//!   B panels for one K-block at a time — vectorized contiguous copies
//!   when the M/N group is unit-stride in the operand, gather otherwise —
//!   and feeds the variant's register-blocked micro-kernel;
//! * parallelism partitions the *output* tiles: every task owns a
//!   disjoint block of C and accumulates K-blocks in a fixed ascending
//!   order, so the result is bitwise identical for every thread count
//!   (for a fixed kernel variant; variants differ in rounding by design).
//!
//! [`contract_gett`] is the entry point the executor uses for every
//! contraction node.

use crate::contract::{reduce_exclusive, BinaryContraction};
use crate::dense::Tensor;
use crate::kernels::{self, KernelConfig, KernelVariant};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use tce_ir::{IndexSpace, IndexVar};

/// Upper bound on `MR*NR` across all kernel variants (accumulator
/// scratch size).
const MAX_ACC: usize = 64;

/// Row-major strides for a shape (same convention as [`Tensor`]).
fn strides_of(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * shape[i + 1];
    }
    s
}

/// Flat-offset table for an index group: entry `g` is the element offset
/// contributed by the group's `g`-th coordinate (row-major over `vars`)
/// in a tensor with dimension list `dims`.  Vars absent from `dims`
/// contribute stride 0 (used only for groups fully present by
/// construction).
fn offset_table(
    vars: &[IndexVar],
    space: &IndexSpace,
    dims: &[IndexVar],
    dim_strides: &[usize],
) -> Vec<usize> {
    let shape: Vec<usize> = vars.iter().map(|&v| space.extent(v)).collect();
    let var_strides: Vec<usize> = vars
        .iter()
        .map(|v| {
            dims.iter()
                .position(|d| d == v)
                .map(|p| dim_strides[p])
                .unwrap_or(0)
        })
        .collect();
    let total: usize = shape.iter().product::<usize>().max(1);
    let mut out = Vec::with_capacity(total);
    let mut idx = vec![0usize; vars.len()];
    for _ in 0..total {
        out.push(
            idx.iter()
                .zip(&var_strides)
                .map(|(&i, &s)| i * s)
                .sum::<usize>(),
        );
        Tensor::advance(&mut idx, &shape);
    }
    out
}

/// `true` when an offset table is the identity (`off[i] == i`): the
/// group is unit-stride and contiguous in the operand, so panel packing
/// can use straight vector copies instead of gathers.
fn is_unit_stride(table: &[usize]) -> bool {
    table.iter().enumerate().all(|(i, &o)| o == i)
}

/// Precomputed execution plan for one binary contraction signature.
///
/// Holds the batch/M/N/K classification and, for each group, the flat
/// element offsets into `a`, `b` and the output array.  With these tables
/// the kernel addresses arbitrary-rank strided operands as if they were
/// matrices, without materializing any transpose.  The plan also carries
/// its kernel configuration — dispatched SIMD variant plus cache-derived
/// MC/NC/KC — chosen once at construction and reused on every execution.
#[derive(Debug)]
pub struct ContractionPlan {
    /// Batch extent (output indices shared by both operands).
    pub nb: usize,
    /// M extent (output indices from `a` only).
    pub m: usize,
    /// N extent (output indices from `b` only).
    pub n: usize,
    /// K extent (contracted indices).
    pub k: usize,
    /// Output shape in the spec's declared `out` order.
    pub out_shape: Vec<usize>,
    /// Expected operand shapes (validated at execution time).
    a_shape: Vec<usize>,
    b_shape: Vec<usize>,
    a_batch_off: Vec<usize>,
    a_m_off: Vec<usize>,
    a_k_off: Vec<usize>,
    b_batch_off: Vec<usize>,
    b_k_off: Vec<usize>,
    b_n_off: Vec<usize>,
    c_batch_off: Vec<usize>,
    c_m_off: Vec<usize>,
    c_n_off: Vec<usize>,
    /// M group is unit-stride in `a` (pack A by vector copy).
    a_m_unit: bool,
    /// N group is unit-stride in `b` (pack B by vector copy).
    b_n_unit: bool,
    /// Dispatched micro-kernel and macro-block sizes.
    kernel: KernelConfig,
}

impl ContractionPlan {
    /// Build a plan for `spec` using the process-wide active kernel
    /// variant (see [`kernels::active`]).  `spec` must already be free
    /// of summation indices exclusive to one operand —
    /// [`contract_gett`] pre-reduces those.
    pub fn new(spec: &BinaryContraction, space: &IndexSpace) -> Self {
        Self::new_with_variant(spec, space, kernels::active())
    }

    /// [`ContractionPlan::new`] with an explicit kernel variant (the
    /// differential tests pit variants against each other in-process).
    pub fn new_with_variant(
        spec: &BinaryContraction,
        space: &IndexSpace,
        variant: KernelVariant,
    ) -> Self {
        spec.validate().expect("invalid contraction");
        let sa = tce_ir::IndexSet::from_vars(spec.a.iter().copied());
        let sb = tce_ir::IndexSet::from_vars(spec.b.iter().copied());
        let so = tce_ir::IndexSet::from_vars(spec.out.iter().copied());
        assert!(
            sa.union(sb).minus(so).is_subset(sa.inter(sb)),
            "plan requires pre-reduced operands (no exclusive summation indices)"
        );
        let batch = so.inter(sa).inter(sb);
        let m_set = so.inter(sa).minus(batch);
        let n_set = so.inter(sb).minus(batch);
        let k_set = spec.contracted();
        let batch_v: Vec<IndexVar> = batch.iter().collect();
        let m_v: Vec<IndexVar> = m_set.iter().collect();
        let n_v: Vec<IndexVar> = n_set.iter().collect();
        let k_v: Vec<IndexVar> = k_set.iter().collect();

        let ext = |vs: &[IndexVar]| -> usize {
            vs.iter()
                .map(|&v| space.extent(v))
                .product::<usize>()
                .max(1)
        };
        let a_shape: Vec<usize> = spec.a.iter().map(|&v| space.extent(v)).collect();
        let b_shape: Vec<usize> = spec.b.iter().map(|&v| space.extent(v)).collect();
        let out_shape: Vec<usize> = spec.out.iter().map(|&v| space.extent(v)).collect();
        let a_strides = strides_of(&a_shape);
        let b_strides = strides_of(&b_shape);
        let c_strides = strides_of(&out_shape);

        let (nb, m, n, k) = (ext(&batch_v), ext(&m_v), ext(&n_v), ext(&k_v));
        let a_m_off = offset_table(&m_v, space, &spec.a, &a_strides);
        let b_n_off = offset_table(&n_v, space, &spec.b, &b_strides);
        Self {
            nb,
            m,
            n,
            k,
            a_batch_off: offset_table(&batch_v, space, &spec.a, &a_strides),
            a_k_off: offset_table(&k_v, space, &spec.a, &a_strides),
            b_batch_off: offset_table(&batch_v, space, &spec.b, &b_strides),
            b_k_off: offset_table(&k_v, space, &spec.b, &b_strides),
            c_batch_off: offset_table(&batch_v, space, &spec.out, &c_strides),
            c_m_off: offset_table(&m_v, space, &spec.out, &c_strides),
            c_n_off: offset_table(&n_v, space, &spec.out, &c_strides),
            a_m_unit: is_unit_stride(&a_m_off),
            b_n_unit: is_unit_stride(&b_n_off),
            a_m_off,
            b_n_off,
            kernel: KernelConfig::select(variant, m, n, k),
            out_shape,
            a_shape,
            b_shape,
        }
    }

    /// The kernel configuration (variant + block sizes) this plan runs.
    pub fn kernel_config(&self) -> &KernelConfig {
        &self.kernel
    }

    /// Execute the plan: `out[o…] = Σ_K a·b` with `threads`-way
    /// parallelism over output tiles.  Bitwise deterministic in the
    /// thread count: each task owns disjoint output tiles and walks
    /// K-blocks in ascending order.
    pub fn execute(&self, a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
        assert_eq!(a.shape(), &self.a_shape[..], "operand a shape mismatch");
        assert_eq!(b.shape(), &self.b_shape[..], "operand b shape mismatch");
        // Tracing is decided once per execution and passed down as a plain
        // bool: tiles never touch the atomic flag.
        let traced = tce_trace::enabled();
        let _exec_span = tce_trace::span("gett.execute");
        let mut out = Tensor::zeros_pooled(&self.out_shape);
        let (nb, m, n) = (self.nb, self.m, self.n);
        let cfg = self.kernel;
        let (mc, nc, kc) = (cfg.blocks.mc, cfg.blocks.nc, cfg.blocks.kc);
        let mt = m.div_ceil(mc);
        let nt = n.div_ceil(nc);
        let tasks = nb * mt * nt;
        let a_data = a.data();
        let b_data = b.data();
        let c_ptr = SendPtr(out.data_mut().as_mut_ptr());
        tce_par::parallel_for(tasks, threads, |range| {
            // Panel buffers are reused across the tiles this worker owns
            // and recycled through the buffer pool across kernel calls.
            let mut apack = crate::bufpool::acquire(mc * kc);
            let mut bpack = crate::bufpool::acquire(kc * nc);
            let mut acc = [0.0f64; MAX_ACC];
            // Per-worker pack/kernel nanoseconds, flushed once per range.
            let mut phase_ns = [0u64; 2];
            for t in range {
                let bi = t / (mt * nt);
                let r = t % (mt * nt);
                let (it, jt) = (r / nt, r % nt);
                self.run_tile(
                    a_data,
                    b_data,
                    &c_ptr,
                    bi,
                    it * mc..((it + 1) * mc).min(m),
                    jt * nc..((jt + 1) * nc).min(n),
                    &mut apack,
                    &mut bpack,
                    &mut acc,
                    traced.then_some(&mut phase_ns),
                );
            }
            if traced {
                tce_trace::counter("gett.pack_ns", phase_ns[0]);
                tce_trace::counter("gett.kernel_ns", phase_ns[1]);
            }
            crate::bufpool::release(apack);
            crate::bufpool::release(bpack);
        });
        if traced {
            tce_trace::counter_u128("gett.flops", self.flops());
            tce_trace::counter(
                match cfg.variant {
                    KernelVariant::Scalar => "gett.kernel_variant.scalar",
                    KernelVariant::Sse2 => "gett.kernel_variant.sse2",
                    KernelVariant::Avx2 => "gett.kernel_variant.avx2",
                },
                1,
            );
            tce_trace::counter("gett.mc", mc as u64);
            tce_trace::counter("gett.nc", nc as u64);
            tce_trace::counter("gett.kc", kc as u64);
        }
        out
    }

    /// Compute one (batch, M-tile, N-tile) block of the output.
    #[allow(clippy::too_many_arguments)]
    fn run_tile(
        &self,
        a_data: &[f64],
        b_data: &[f64],
        c_ptr: &SendPtr,
        bi: usize,
        mi: std::ops::Range<usize>,
        nj: std::ops::Range<usize>,
        apack: &mut [f64],
        bpack: &mut [f64],
        acc: &mut [f64; MAX_ACC],
        mut timing: Option<&mut [u64; 2]>,
    ) {
        let (i0, i1) = (mi.start, mi.end);
        let (j0, j1) = (nj.start, nj.end);
        let cfg = &self.kernel;
        let (mr, nr, kc) = (cfg.mr, cfg.nr, cfg.blocks.kc);
        let variant = cfg.variant;
        let a_base = self.a_batch_off[bi];
        let b_base = self.b_batch_off[bi];
        let c_base = self.c_batch_off[bi];
        let m_strips = (i1 - i0).div_ceil(mr);
        let n_strips = (j1 - j0).div_ceil(nr);

        let mut pc = 0;
        while pc < self.k {
            let kb = kc.min(self.k - pc);
            let t_pack = timing.as_ref().map(|_| tce_trace::now_ns());
            // Pack A: strip-major, `mr` consecutive rows per k column —
            // the micro-kernel reads `mr` contiguous values per step.
            // Full strips of a unit-stride M group copy with vector
            // moves; edges and strided layouts gather through the offset
            // table (zero-padding partial strips; 0·b adds nothing).
            for s in 0..m_strips {
                let strip = &mut apack[s * kb * mr..(s + 1) * kb * mr];
                let i_base = i0 + s * mr;
                if self.a_m_unit && i_base + mr <= i1 {
                    for (kk, col) in strip.chunks_exact_mut(mr).enumerate() {
                        let src = a_base + self.a_k_off[pc + kk] + i_base;
                        kernels::copy_f64(variant, col, &a_data[src..src + mr]);
                    }
                } else {
                    for (kk, col) in strip.chunks_exact_mut(mr).enumerate() {
                        let k_off = self.a_k_off[pc + kk];
                        for (r, slot) in col.iter_mut().enumerate() {
                            let i = i_base + r;
                            *slot = if i < i1 {
                                a_data[a_base + self.a_m_off[i] + k_off]
                            } else {
                                0.0
                            };
                        }
                    }
                }
            }
            // Pack B: strip-major, `nr` consecutive columns per k row.
            for s in 0..n_strips {
                let strip = &mut bpack[s * kb * nr..(s + 1) * kb * nr];
                let j_base = j0 + s * nr;
                if self.b_n_unit && j_base + nr <= j1 {
                    for (kk, row) in strip.chunks_exact_mut(nr).enumerate() {
                        let src = b_base + self.b_k_off[pc + kk] + j_base;
                        kernels::copy_f64(variant, row, &b_data[src..src + nr]);
                    }
                } else {
                    for (kk, row) in strip.chunks_exact_mut(nr).enumerate() {
                        let k_off = self.b_k_off[pc + kk];
                        for (c, slot) in row.iter_mut().enumerate() {
                            let j = j_base + c;
                            *slot = if j < j1 {
                                b_data[b_base + k_off + self.b_n_off[j]]
                            } else {
                                0.0
                            };
                        }
                    }
                }
            }
            let t_kernel = timing.as_ref().map(|_| tce_trace::now_ns());
            // Micro-kernel sweep over the tile's register blocks.
            for ns in 0..n_strips {
                let bp = &bpack[ns * kb * nr..(ns + 1) * kb * nr];
                for ms in 0..m_strips {
                    let ap = &apack[ms * kb * mr..(ms + 1) * kb * mr];
                    kernels::microkernel(cfg, ap, bp, kb, acc);
                    // Scatter the register block through the output
                    // offset tables (writes are disjoint across tasks).
                    for r in 0..mr {
                        let i = i0 + ms * mr + r;
                        if i >= i1 {
                            break;
                        }
                        let row_base = c_base + self.c_m_off[i];
                        for (c, &v) in acc[r * nr..(r + 1) * nr].iter().enumerate() {
                            let j = j0 + ns * nr + c;
                            if j >= j1 {
                                break;
                            }
                            // SAFETY: (bi, i, j) is owned by exactly this
                            // task; offsets are within the output buffer.
                            unsafe {
                                *c_ptr.0.add(row_base + self.c_n_off[j]) += v;
                            }
                        }
                    }
                }
            }
            if let Some(acc_ns) = timing.as_deref_mut() {
                let (t0, t1, t2) = (
                    t_pack.expect("set when timing"),
                    t_kernel.expect("set when timing"),
                    tce_trace::now_ns(),
                );
                tce_trace::span_at("gett.pack", t0, t1);
                tce_trace::span_at("gett.kernel", t1, t2);
                acc_ns[0] += t1 - t0;
                acc_ns[1] += t2 - t1;
            }
            pc += kb;
        }
    }

    /// Multiply–add flops this plan performs per execution.
    pub fn flops(&self) -> u128 {
        2 * (self.nb * self.m * self.n) as u128 * self.k as u128
    }
}

/// Raw output pointer wrapper; tasks write provably disjoint elements.
struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Cache key: the contraction signature (index ids per operand slot),
/// every involved extent, and the kernel variant the plan was tuned for
/// (block sizes depend on it, and overrides can change mid-process).
#[derive(Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    a: Vec<u8>,
    b: Vec<u8>,
    out: Vec<u8>,
    extents: Vec<usize>,
    variant: KernelVariant,
}

impl PlanKey {
    fn new(spec: &BinaryContraction, space: &IndexSpace, variant: KernelVariant) -> Self {
        let ids = |vs: &[IndexVar]| vs.iter().map(|v| v.0).collect::<Vec<u8>>();
        let extents = spec
            .a
            .iter()
            .chain(&spec.b)
            .chain(&spec.out)
            .map(|&v| space.extent(v))
            .collect();
        Self {
            a: ids(&spec.a),
            b: ids(&spec.b),
            out: ids(&spec.out),
            extents,
            variant,
        }
    }
}

/// A capacity-bounded plan store with LRU eviction.  Recency is a u64
/// stamp per entry (bumped on every hit); eviction scans for the minimum
/// stamp — O(capacity), which is trivial next to plan construction and
/// keeps the structure a plain `HashMap`.
struct PlanStore {
    map: HashMap<PlanKey, (Arc<ContractionPlan>, u64)>,
    capacity: usize,
    clock: u64,
}

impl PlanStore {
    fn get(&mut self, key: &PlanKey) -> Option<Arc<ContractionPlan>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|(plan, stamp)| {
            *stamp = clock;
            Arc::clone(plan)
        })
    }

    /// Insert, evicting least-recently-used entries down to `capacity`.
    /// A zero-capacity store rejects the entry outright (counted as an
    /// eviction so `len == misses - evictions` stays an invariant).
    fn insert(&mut self, key: PlanKey, plan: Arc<ContractionPlan>, stats: &ShardStats) {
        if self.capacity == 0 {
            stats.evictions.fetch_add(1, Ordering::Relaxed);
            PLAN_EVICTIONS.fetch_add(1, Ordering::Relaxed);
            tce_trace::counter("plan_cache.evictions", 1);
            return;
        }
        while self.map.len() >= self.capacity {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
                .expect("non-empty map over capacity");
            self.map.remove(&oldest);
            stats.evictions.fetch_add(1, Ordering::Relaxed);
            PLAN_EVICTIONS.fetch_add(1, Ordering::Relaxed);
            tce_trace::counter("plan_cache.evictions", 1);
        }
        self.clock += 1;
        self.map.insert(key, (plan, self.clock));
    }
}

/// Per-shard hit/miss/eviction accounting (relaxed atomics: read by the
/// `stats` endpoint of `tce serve`, never on the contraction hot path).
#[derive(Default)]
struct ShardStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// One independently locked slice of the plan cache.
struct Shard {
    store: Mutex<PlanStore>,
    stats: ShardStats,
}

/// The sharded plan cache: signatures are hashed onto `shards.len()`
/// independently locked LRU stores, so concurrent requests with distinct
/// signatures contend only 1/S of the time instead of serializing on one
/// process-wide mutex.  The configured total capacity is split across
/// shards (shard `i` gets `cap/S` plus one of the `cap % S` remainders),
/// so the global entry count never exceeds the configured bound.
struct ShardedPlanCache {
    shards: Vec<Shard>,
}

impl ShardedPlanCache {
    fn new(capacity: usize, shard_count: usize) -> Self {
        let shard_count = shard_count.clamp(1, 64);
        let shards = (0..shard_count)
            .map(|i| Shard {
                store: Mutex::new(PlanStore {
                    map: HashMap::new(),
                    capacity: Self::shard_capacity(capacity, shard_count, i),
                    clock: 0,
                }),
                stats: ShardStats::default(),
            })
            .collect();
        Self { shards }
    }

    fn shard_capacity(total: usize, shards: usize, i: usize) -> usize {
        total / shards + usize::from(i < total % shards)
    }

    fn shard_for(&self, key: &PlanKey) -> &Shard {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }
}

/// Default plan-cache capacity; override with `TCE_PLAN_CACHE_CAP` or
/// [`set_plan_cache_capacity`].  Plans are small (offset tables), so a few
/// hundred distinct signatures cover any realistic program while bounding
/// a long-running process that churns through many shapes (e.g. per-rank
/// local extents under varying grids).
const DEFAULT_PLAN_CACHE_CAP: usize = 512;

/// Default shard count; override with `TCE_PLAN_CACHE_SHARDS` (clamped to
/// 1..=64).  Eight shards keep worst-case contention at 1/8 of a single
/// mutex while leaving per-shard capacities meaningful at small totals.
const DEFAULT_PLAN_CACHE_SHARDS: usize = 8;

static PLAN_CACHE: OnceLock<ShardedPlanCache> = OnceLock::new();
static PLAN_HITS: AtomicU64 = AtomicU64::new(0);
static PLAN_MISSES: AtomicU64 = AtomicU64::new(0);
static PLAN_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Validate `TCE_PLAN_CACHE_CAP` / `TCE_PLAN_CACHE_SHARDS` up front: the
/// CLI calls this so a malformed value is a one-line diagnostic rather
/// than being silently ignored.  Returns the requested capacity, if any.
pub fn plan_cache_env_requested() -> Result<Option<usize>, String> {
    let mut requested = None;
    if let Ok(v) = std::env::var("TCE_PLAN_CACHE_CAP") {
        match v.parse::<usize>() {
            Ok(c) if c > 0 => requested = Some(c),
            Ok(_) => return Err("TCE_PLAN_CACHE_CAP must be at least 1".to_string()),
            Err(e) => return Err(format!("bad TCE_PLAN_CACHE_CAP `{v}`: {e}")),
        }
    }
    if let Ok(v) = std::env::var("TCE_PLAN_CACHE_SHARDS") {
        match v.parse::<usize>() {
            Ok(s) if s > 0 => {}
            Ok(_) => return Err("TCE_PLAN_CACHE_SHARDS must be at least 1".to_string()),
            Err(e) => return Err(format!("bad TCE_PLAN_CACHE_SHARDS `{v}`: {e}")),
        }
    }
    Ok(requested)
}

fn plan_cache() -> &'static ShardedPlanCache {
    PLAN_CACHE.get_or_init(|| {
        let capacity = std::env::var("TCE_PLAN_CACHE_CAP")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_PLAN_CACHE_CAP);
        let shards = std::env::var("TCE_PLAN_CACHE_SHARDS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&s| s > 0)
            .unwrap_or(DEFAULT_PLAN_CACHE_SHARDS);
        ShardedPlanCache::new(capacity, shards)
    })
}

/// The memoized plan for `spec` under `space`'s extents and the active
/// kernel variant.  Synthesized programs execute the same handful of
/// contraction shapes thousands of times (once per tile / per term), so
/// plan construction — index classification, offset tables, block-size
/// autotuning — is paid once per signature.  The cache is LRU-bounded and
/// sharded by signature hash (see [`set_plan_cache_capacity`]), so
/// concurrent callers with distinct signatures do not serialize on one
/// mutex; each shard lock recovers from poisoning because the store holds
/// only immutable plans — a worker that panicked mid-lookup cannot leave
/// it inconsistent.
pub fn plan_for(spec: &BinaryContraction, space: &IndexSpace) -> Arc<ContractionPlan> {
    plan_for_variant(spec, space, kernels::active())
}

/// [`plan_for`] pinned to an explicit kernel variant.
pub fn plan_for_variant(
    spec: &BinaryContraction,
    space: &IndexSpace,
    variant: KernelVariant,
) -> Arc<ContractionPlan> {
    let key = PlanKey::new(spec, space, variant);
    let shard = plan_cache().shard_for(&key);
    // The shard lock is held across plan construction on a miss: two
    // concurrent requests for the same signature build it once, and
    // requests hashing to other shards proceed unimpeded.
    let mut store = shard.store.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(plan) = store.get(&key) {
        shard.stats.hits.fetch_add(1, Ordering::Relaxed);
        PLAN_HITS.fetch_add(1, Ordering::Relaxed);
        tce_trace::counter("plan_cache.hits", 1);
        return plan;
    }
    shard.stats.misses.fetch_add(1, Ordering::Relaxed);
    PLAN_MISSES.fetch_add(1, Ordering::Relaxed);
    tce_trace::counter("plan_cache.misses", 1);
    let plan = Arc::new(ContractionPlan::new_with_variant(spec, space, variant));
    store.insert(key, Arc::clone(&plan), &shard.stats);
    plan
}

/// `(hits, misses, evictions)` of the process-wide plan cache, summed
/// over all shards.
pub fn plan_cache_stats() -> (u64, u64, u64) {
    (
        PLAN_HITS.load(Ordering::Relaxed),
        PLAN_MISSES.load(Ordering::Relaxed),
        PLAN_EVICTIONS.load(Ordering::Relaxed),
    )
}

/// Per-shard `(hits, misses, evictions)` — the `tce serve` `stats`
/// endpoint reports these so shard imbalance is observable.
pub fn plan_cache_shard_stats() -> Vec<(u64, u64, u64)> {
    plan_cache()
        .shards
        .iter()
        .map(|s| {
            (
                s.stats.hits.load(Ordering::Relaxed),
                s.stats.misses.load(Ordering::Relaxed),
                s.stats.evictions.load(Ordering::Relaxed),
            )
        })
        .collect()
}

/// Number of plans currently cached (summed over all shards).
pub fn plan_cache_len() -> usize {
    plan_cache()
        .shards
        .iter()
        .map(|s| s.store.lock().unwrap_or_else(|e| e.into_inner()).map.len())
        .sum()
}

/// Number of shards the plan cache is split into.
pub fn plan_cache_shards() -> usize {
    plan_cache().shards.len()
}

/// Set the plan-cache total capacity (evicting immediately if over the
/// new bound) and return the previous total.  The capacity is split
/// across shards, so the summed entry count never exceeds `capacity`.
pub fn set_plan_cache_capacity(capacity: usize) -> usize {
    let capacity = capacity.max(1);
    let cache = plan_cache();
    let shard_count = cache.shards.len();
    let mut old_total = 0;
    for (i, shard) in cache.shards.iter().enumerate() {
        let mut store = shard.store.lock().unwrap_or_else(|e| e.into_inner());
        old_total += store.capacity;
        let cap = ShardedPlanCache::shard_capacity(capacity, shard_count, i);
        store.capacity = cap;
        while store.map.len() > cap {
            let oldest = store
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
                .expect("non-empty map over capacity");
            store.map.remove(&oldest);
            shard.stats.evictions.fetch_add(1, Ordering::Relaxed);
            PLAN_EVICTIONS.fetch_add(1, Ordering::Relaxed);
            tce_trace::counter("plan_cache.evictions", 1);
        }
    }
    old_total
}

/// Contract `a` and `b` with the packed GETT engine using `threads`
/// workers and the process-wide active kernel variant.  Handles every
/// valid [`BinaryContraction`] (summation indices exclusive to one
/// operand are pre-reduced, as in `contract_gemm`).  Output is bitwise
/// identical for every `threads` value.
pub fn contract_gett(
    spec: &BinaryContraction,
    space: &IndexSpace,
    a: &Tensor,
    b: &Tensor,
    threads: usize,
) -> Tensor {
    contract_gett_with_variant(spec, space, a, b, threads, kernels::active())
}

/// [`contract_gett`] pinned to an explicit kernel variant — the
/// differential-test entry point (SIMD vs scalar oracle in one process).
pub fn contract_gett_with_variant(
    spec: &BinaryContraction,
    space: &IndexSpace,
    a: &Tensor,
    b: &Tensor,
    threads: usize,
    variant: KernelVariant,
) -> Tensor {
    spec.validate().expect("invalid contraction");
    let (ar, a_dims) = reduce_exclusive(spec, space, a, true);
    let (br, b_dims) = reduce_exclusive(spec, space, b, false);
    let reduced = BinaryContraction {
        a: a_dims,
        b: b_dims,
        out: spec.out.clone(),
    };
    let plan = plan_for_variant(&reduced, space, variant);
    plan.execute(&ar, &br, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::contract_naive;

    fn space(extents: &[(&str, usize)]) -> IndexSpace {
        let mut sp = IndexSpace::new();
        for (name, e) in extents {
            let r = sp.add_range(&format!("R{name}"), *e);
            sp.add_var(name, r);
        }
        sp
    }

    fn v(sp: &IndexSpace, n: &str) -> IndexVar {
        sp.var_by_name(n).unwrap()
    }

    #[test]
    fn matmul_matches_naive_at_awkward_sizes() {
        // Extents straddle the MR/NR/MC/NC boundaries of every variant.
        for (mi, ni, ki) in [
            (1, 1, 1),
            (7, 3, 5),
            (8, 4, 192),
            (65, 67, 193),
            (130, 9, 64),
        ] {
            let mut sp = IndexSpace::new();
            let rm = sp.add_range("M", mi);
            let rn = sp.add_range("N", ni);
            let rk = sp.add_range("K", ki);
            let i = sp.add_var("i", rm);
            let j = sp.add_var("j", rn);
            let k = sp.add_var("k", rk);
            let spec = BinaryContraction {
                a: vec![i, k],
                b: vec![k, j],
                out: vec![i, j],
            };
            let a = Tensor::random(&[mi, ki], 1);
            let b = Tensor::random(&[ki, ni], 2);
            let naive = contract_naive(&spec, &sp, &a, &b);
            for variant in kernels::supported_variants() {
                let fast = contract_gett_with_variant(&spec, &sp, &a, &b, 2, variant);
                assert!(
                    naive.approx_eq(&fast, 1e-10),
                    "{variant} ({mi},{ni},{ki}): diff {:e}",
                    naive.max_abs_diff(&fast)
                );
            }
        }
    }

    #[test]
    fn batch_and_transposed_output() {
        // out[p,j,i] = Σ_k a[i,p,k]·b[k,j,p] — batch index in the middle
        // of a and at the end of b, transposed output.  Neither the M
        // nor the N group is unit-stride, so this exercises the gather
        // pack path under every variant.
        let sp = space(&[("p", 3), ("i", 10), ("j", 9), ("k", 17)]);
        let spec = BinaryContraction {
            a: vec![v(&sp, "i"), v(&sp, "p"), v(&sp, "k")],
            b: vec![v(&sp, "k"), v(&sp, "j"), v(&sp, "p")],
            out: vec![v(&sp, "p"), v(&sp, "j"), v(&sp, "i")],
        };
        let a = Tensor::random(&[10, 3, 17], 3);
        let b = Tensor::random(&[17, 9, 3], 4);
        let naive = contract_naive(&spec, &sp, &a, &b);
        for variant in kernels::supported_variants() {
            let fast = contract_gett_with_variant(&spec, &sp, &a, &b, 3, variant);
            assert!(naive.approx_eq(&fast, 1e-10), "{variant}");
        }
    }

    #[test]
    fn unit_stride_detection_feeds_vector_pack() {
        // a[k,i], b[k,j]: M innermost in a, N innermost in b — both
        // unit-stride.
        let sp = space(&[("i", 9), ("j", 11), ("k", 13)]);
        let spec = BinaryContraction {
            a: vec![v(&sp, "k"), v(&sp, "i")],
            b: vec![v(&sp, "k"), v(&sp, "j")],
            out: vec![v(&sp, "i"), v(&sp, "j")],
        };
        let plan = ContractionPlan::new(&spec, &sp);
        assert!(plan.a_m_unit && plan.b_n_unit);
        // a[i,k]: M outermost in a — strided.
        let spec2 = BinaryContraction {
            a: vec![v(&sp, "i"), v(&sp, "k")],
            b: vec![v(&sp, "k"), v(&sp, "j")],
            out: vec![v(&sp, "i"), v(&sp, "j")],
        };
        let plan2 = ContractionPlan::new(&spec2, &sp);
        assert!(!plan2.a_m_unit && plan2.b_n_unit);
    }

    #[test]
    fn exclusive_summation_and_scalar_output() {
        // Σ_{i,j} a[i,j]·b[j,l] with l also summed (exclusive to b).
        let sp = space(&[("i", 6), ("j", 7), ("l", 5)]);
        let spec = BinaryContraction {
            a: vec![v(&sp, "i"), v(&sp, "j")],
            b: vec![v(&sp, "j"), v(&sp, "l")],
            out: vec![],
        };
        let a = Tensor::random(&[6, 7], 5);
        let b = Tensor::random(&[7, 5], 6);
        let naive = contract_naive(&spec, &sp, &a, &b);
        for variant in kernels::supported_variants() {
            let fast = contract_gett_with_variant(&spec, &sp, &a, &b, 2, variant);
            assert_eq!(fast.rank(), 0);
            assert!((naive.get(&[]) - fast.get(&[])).abs() < 1e-10, "{variant}");
        }
    }

    #[test]
    fn outer_product_no_contracted_indices() {
        let sp = space(&[("i", 5), ("j", 6)]);
        let spec = BinaryContraction {
            a: vec![v(&sp, "i")],
            b: vec![v(&sp, "j")],
            out: vec![v(&sp, "j"), v(&sp, "i")],
        };
        let a = Tensor::random(&[5], 7);
        let b = Tensor::random(&[6], 8);
        let naive = contract_naive(&spec, &sp, &a, &b);
        for variant in kernels::supported_variants() {
            let fast = contract_gett_with_variant(&spec, &sp, &a, &b, 4, variant);
            assert!(naive.approx_eq(&fast, 1e-10), "{variant}");
        }
    }

    #[test]
    fn bitwise_identical_across_thread_counts() {
        let sp = space(&[("b", 2), ("c", 5), ("d", 4), ("e", 9), ("f", 6), ("l", 7)]);
        let spec = BinaryContraction {
            a: vec![v(&sp, "b"), v(&sp, "e"), v(&sp, "f"), v(&sp, "l")],
            b: vec![v(&sp, "c"), v(&sp, "d"), v(&sp, "e"), v(&sp, "l")],
            out: vec![v(&sp, "b"), v(&sp, "c"), v(&sp, "d"), v(&sp, "f")],
        };
        let a = Tensor::random(&[2, 9, 6, 7], 9);
        let b = Tensor::random(&[5, 4, 9, 7], 10);
        for variant in kernels::supported_variants() {
            let t1 = contract_gett_with_variant(&spec, &sp, &a, &b, 1, variant);
            for threads in [2, 3, 7, 16] {
                let tn = contract_gett_with_variant(&spec, &sp, &a, &b, threads, variant);
                assert_eq!(t1, tn, "{variant}: threads={threads} changed bits");
            }
        }
    }

    /// Cache tests mutate process-wide state; serialize them so one
    /// test's evictions can't disturb another's hit/miss accounting.
    static CACHE_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn plan_cache_hits_on_repeat_signatures() {
        let _guard = CACHE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let sp = space(&[("x", 11), ("y", 13), ("z", 12)]);
        let spec = BinaryContraction {
            a: vec![v(&sp, "x"), v(&sp, "z")],
            b: vec![v(&sp, "z"), v(&sp, "y")],
            out: vec![v(&sp, "x"), v(&sp, "y")],
        };
        let (_, m0, _) = plan_cache_stats();
        let _ = plan_for(&spec, &sp);
        let (h1, m1, _) = plan_cache_stats();
        assert_eq!(m1, m0 + 1);
        let _ = plan_for(&spec, &sp);
        let (h2, m2, _) = plan_cache_stats();
        assert_eq!(h2, h1 + 1);
        assert_eq!(m2, m1);
        // Same var ids under different extents must NOT hit.
        let sp2 = space(&[("x", 11), ("y", 13), ("z", 5)]);
        let spec2 = BinaryContraction {
            a: vec![v(&sp2, "x"), v(&sp2, "z")],
            b: vec![v(&sp2, "z"), v(&sp2, "y")],
            out: vec![v(&sp2, "x"), v(&sp2, "y")],
        };
        let _ = plan_for(&spec2, &sp2);
        let (_, m3, _) = plan_cache_stats();
        assert_eq!(m3, m2 + 1);
        // Same signature under a different kernel variant must NOT hit:
        // block sizes (and thus results' rounding) are variant-tuned.
        let other = kernels::supported_variants()
            .into_iter()
            .find(|&kv| kv != kernels::active());
        if let Some(other) = other {
            let _ = plan_for_variant(&spec2, &sp2, other);
            let (_, m4, _) = plan_cache_stats();
            assert_eq!(m4, m3 + 1);
        }
    }

    #[test]
    fn plan_cache_stays_within_capacity() {
        let _guard = CACHE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let old_cap = set_plan_cache_capacity(8);
        let (_, _, e0) = plan_cache_stats();
        // 40 distinct signatures (unique extent vectors) against an
        // 8-entry bound: the cache must evict, never grow past capacity.
        for n in 2..42usize {
            let sp = space(&[("x", n), ("y", n + 1), ("z", n + 2)]);
            let spec = BinaryContraction {
                a: vec![v(&sp, "x"), v(&sp, "z")],
                b: vec![v(&sp, "z"), v(&sp, "y")],
                out: vec![v(&sp, "x"), v(&sp, "y")],
            };
            let _ = plan_for(&spec, &sp);
            assert!(plan_cache_len() <= 8, "cache grew to {}", plan_cache_len());
        }
        let (_, _, e1) = plan_cache_stats();
        assert!(e1 > e0, "insertions past capacity must evict");
        // LRU: the most recent signature survives and still hits.
        let sp = space(&[("x", 41), ("y", 42), ("z", 43)]);
        let spec = BinaryContraction {
            a: vec![v(&sp, "x"), v(&sp, "z")],
            b: vec![v(&sp, "z"), v(&sp, "y")],
            out: vec![v(&sp, "x"), v(&sp, "y")],
        };
        let (h0, _, _) = plan_cache_stats();
        let _ = plan_for(&spec, &sp);
        let (h1, _, _) = plan_cache_stats();
        assert_eq!(h1, h0 + 1);
        set_plan_cache_capacity(old_cap);
    }

    #[test]
    fn plan_reports_geometry_flops_and_kernel() {
        let sp = space(&[("p", 3), ("i", 4), ("j", 5), ("k", 6)]);
        let spec = BinaryContraction {
            a: vec![v(&sp, "p"), v(&sp, "i"), v(&sp, "k")],
            b: vec![v(&sp, "p"), v(&sp, "k"), v(&sp, "j")],
            out: vec![v(&sp, "p"), v(&sp, "i"), v(&sp, "j")],
        };
        // Capture the variant once: another test may toggle the process
        // override concurrently, so don't compare two separate reads.
        let variant = kernels::active();
        let plan = ContractionPlan::new_with_variant(&spec, &sp, variant);
        assert_eq!((plan.nb, plan.m, plan.n, plan.k), (3, 4, 5, 6));
        assert_eq!(plan.out_shape, vec![3, 4, 5]);
        assert_eq!(plan.flops(), spec.flops(&sp));
        let cfg = plan.kernel_config();
        assert_eq!(cfg.variant, variant);
        assert_eq!(cfg.mr, cfg.variant.mr());
        assert_eq!(cfg.nr, cfg.variant.nr());
        assert!(cfg.blocks.mc >= cfg.mr && cfg.blocks.nc >= cfg.nr && cfg.blocks.kc >= 8);
    }

    #[test]
    fn plan_execute_rejects_wrong_shapes() {
        let sp = space(&[("i", 4), ("j", 5), ("k", 6)]);
        let spec = BinaryContraction {
            a: vec![v(&sp, "i"), v(&sp, "k")],
            b: vec![v(&sp, "k"), v(&sp, "j")],
            out: vec![v(&sp, "i"), v(&sp, "j")],
        };
        let plan = ContractionPlan::new(&spec, &sp);
        let bad = Tensor::zeros(&[4, 4]);
        let b = Tensor::zeros(&[6, 5]);
        let r = std::panic::catch_unwind(|| plan.execute(&bad, &b, 1));
        assert!(r.is_err());
    }
}
