//! Fusion chains and the paper's global scope-nesting condition.
//!
//! Fusing more than two loop nests on an index produces a *fusion chain*
//! (paper §5); the *scope* of a chain is the set of operator-tree nodes it
//! spans.  "The scope of any two fusion chains in a fusion graph must
//! either be disjoint or a subset/superset of each other.  Scopes of fusion
//! chains do not partially overlap because loops do not."
//!
//! [`chains_of`] extracts every chain of a configuration and
//! [`check_chainwise`] applies the global condition directly.  This is the
//! oracle the local pattern-comparability check in
//! [`crate::config::FusionConfig::check`] is validated against.

use crate::config::{fusable_set, FusionConfig};
use tce_ir::{IndexSet, IndexVar, NodeId, OpTree};

/// One fusion chain: a maximal connected set of tree edges fused on the
/// same index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// The fused index.
    pub index: IndexVar,
    /// The nodes the chain spans (its *scope*), as a sorted list.
    pub scope: Vec<NodeId>,
}

impl Chain {
    /// Scope as a bitmask over node ids (trees here are far smaller than
    /// 128 nodes).
    fn scope_mask(&self) -> u128 {
        self.scope.iter().fold(0u128, |m, n| m | (1u128 << n.0))
    }
}

/// Extract all fusion chains of `config`: for each index, the connected
/// components of the set of tree edges whose fused set contains it.
pub fn chains_of(tree: &OpTree, config: &FusionConfig) -> Vec<Chain> {
    assert!(tree.len() <= 128, "chain analysis limited to 128 nodes");
    let parents = tree.parents();
    let mut out = Vec::new();
    // Union-find over nodes, rebuilt per index (trees are small).
    let mut all_indices = IndexSet::EMPTY;
    for id in tree.postorder() {
        all_indices = all_indices.union(config.get(id));
    }
    for x in all_indices.iter() {
        let mut parent_uf: Vec<usize> = (0..tree.len()).collect();
        fn find(uf: &mut [usize], mut i: usize) -> usize {
            while uf[i] != i {
                uf[i] = uf[uf[i]];
                i = uf[i];
            }
            i
        }
        let mut involved = vec![false; tree.len()];
        for id in tree.postorder() {
            if config.get(id).contains(x) {
                let u = parents[id.0 as usize].expect("root cannot be fused");
                involved[id.0 as usize] = true;
                involved[u.0 as usize] = true;
                let (a, b) = (
                    find(&mut parent_uf, id.0 as usize),
                    find(&mut parent_uf, u.0 as usize),
                );
                parent_uf[a] = b;
            }
        }
        let mut groups: std::collections::HashMap<usize, Vec<NodeId>> = Default::default();
        for (i, &inv) in involved.iter().enumerate() {
            if inv {
                let r = find(&mut parent_uf, i);
                groups.entry(r).or_default().push(NodeId(i as u32));
            }
        }
        for (_, mut scope) in groups {
            scope.sort();
            out.push(Chain { index: x, scope });
        }
    }
    // Deterministic order: by index then first scope node.
    out.sort_by_key(|c| (c.index, c.scope.first().copied()));
    out
}

/// Scope-nesting part of the feasibility condition only (no basic
/// well-formedness): every pair of chain scopes must be disjoint or
/// nested.
pub fn check_scopes(tree: &OpTree, config: &FusionConfig) -> Result<(), String> {
    let chains = chains_of(tree, config);
    for (i, a) in chains.iter().enumerate() {
        let ma = a.scope_mask();
        for b in &chains[i + 1..] {
            let mb = b.scope_mask();
            let inter = ma & mb;
            if inter != 0 && inter != ma && inter != mb {
                return Err(format!(
                    "chains on `{}` and `{}` have partially overlapping scopes",
                    a.index.0, b.index.0
                ));
            }
        }
    }
    Ok(())
}

/// The paper's global feasibility condition, checked directly: every pair
/// of chain scopes must be disjoint or nested.  Also re-checks that each
/// fused set is within the edge's fusable set.
pub fn check_chainwise(tree: &OpTree, config: &FusionConfig) -> Result<(), String> {
    if !config.get(tree.root).is_empty() {
        return Err("root has no parent edge to fuse".into());
    }
    let parents = tree.parents();
    for id in tree.postorder() {
        if id == tree.root {
            continue;
        }
        let u = parents[id.0 as usize].unwrap();
        if !config.get(id).is_subset(fusable_set(tree, id, u)) {
            return Err(format!(
                "edge {}→{}: fused set outside the fusable set",
                id.0, u.0
            ));
        }
    }
    check_scopes(tree, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_ir::{IndexSpace, TensorDecl, TensorTable};

    fn fig1() -> (IndexSpace, OpTree, NodeId, NodeId) {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 4);
        let vs = space.add_vars("a b c d e f i j k l", n);
        let (a, b, c, d, e, f, i, j, k, l) = (
            vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6], vs[7], vs[8], vs[9],
        );
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n; 4]));
        let tb = tensors.add(TensorDecl::dense("B", vec![n; 4]));
        let tc = tensors.add(TensorDecl::dense("C", vec![n; 4]));
        let td = tensors.add(TensorDecl::dense("D", vec![n; 4]));
        let mut tree = OpTree::new();
        let lb = tree.leaf_input(tb, vec![b, e, f, l]);
        let ld = tree.leaf_input(td, vec![c, d, e, l]);
        let t1 = tree.contract(lb, ld, IndexSet::from_vars([b, c, d, f]));
        let lc = tree.leaf_input(tc, vec![d, f, j, k]);
        let t2 = tree.contract(t1, lc, IndexSet::from_vars([b, c, j, k]));
        let la = tree.leaf_input(ta, vec![a, c, i, k]);
        tree.contract(t2, la, IndexSet::from_vars([a, b, i, j]));
        (space, tree, t1, t2)
    }

    #[test]
    fn chains_of_fig1c() {
        let (space, tree, t1, t2) = fig1();
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(t1, space.parse_set("b,c,d,f").unwrap());
        cfg.set(t2, space.parse_set("b,c").unwrap());
        let chains = chains_of(&tree, &cfg);
        // b and c chains span T1→T2→S (scope of 3 nodes); d and f span
        // T1→T2 (2 nodes).
        assert_eq!(chains.len(), 4);
        let by_index: Vec<(u8, usize)> =
            chains.iter().map(|c| (c.index.0, c.scope.len())).collect();
        let b = space.var_by_name("b").unwrap().0;
        let c = space.var_by_name("c").unwrap().0;
        let d = space.var_by_name("d").unwrap().0;
        let f = space.var_by_name("f").unwrap().0;
        assert!(by_index.contains(&(b, 3)));
        assert!(by_index.contains(&(c, 3)));
        assert!(by_index.contains(&(d, 2)));
        assert!(by_index.contains(&(f, 2)));
        check_chainwise(&tree, &cfg).unwrap();
    }

    #[test]
    fn partially_overlapping_scopes_rejected() {
        let (space, tree, t1, t2) = fig1();
        let mut cfg = FusionConfig::unfused(&tree);
        // T2 fused on j,k with S; T1 fused on d,f with T2: d/f chains span
        // {T1,T2}, j/k chains span {T2,S} — partial overlap at T2.
        cfg.set(t2, space.parse_set("j,k").unwrap());
        cfg.set(t1, space.parse_set("d,f").unwrap());
        let err = check_chainwise(&tree, &cfg).unwrap_err();
        assert!(err.contains("partially overlapping"), "{err}");
        // The local pattern check agrees.
        assert!(cfg.check(&tree).is_err());
    }

    #[test]
    fn disjoint_scopes_allowed() {
        // Two independent fused pairs in different subtrees.
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 3);
        let i = space.add_var("i", n);
        let j = space.add_var("j", n);
        let mut tensors = TensorTable::new();
        let t =
            |tab: &mut TensorTable, nm: &str, k: usize| tab.add(TensorDecl::dense(nm, vec![n; k]));
        let (ta, tb, tc, td) = (
            t(&mut tensors, "A", 2),
            t(&mut tensors, "B", 2),
            t(&mut tensors, "C", 2),
            t(&mut tensors, "D", 2),
        );
        let mut tree = OpTree::new();
        // X[i] = Σ_j A[i,j]B[i,j]? — build X = A·B keeping {i}, Y = C·D
        // keeping {i}; R = Σ_i X·Y.
        let la = tree.leaf_input(ta, vec![i, j]);
        let lb = tree.leaf_input(tb, vec![i, j]);
        let x = tree.contract(la, lb, i.singleton());
        let lc = tree.leaf_input(tc, vec![i, j]);
        let ld = tree.leaf_input(td, vec![i, j]);
        let y = tree.contract(lc, ld, i.singleton());
        tree.contract(x, y, IndexSet::EMPTY);
        let mut cfg = FusionConfig::unfused(&tree);
        cfg.set(x, i.singleton());
        cfg.set(y, i.singleton());
        // One i-chain spanning {X, Y, root}: legal.
        check_chainwise(&tree, &cfg).unwrap();
        cfg.check(&tree).unwrap();
        let chains = chains_of(&tree, &cfg);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].scope.len(), 3);
    }

    #[test]
    fn local_and_global_checks_agree_on_random_configs() {
        use tce_ir::rng::Rng;
        // Randomized equivalence: on random trees, enumerate random fused
        // sets per edge and compare the local pattern check with the
        // global chain-scope condition.
        let mut rng = Rng::new(7_2002);
        for trial in 0..200 {
            let mut space = IndexSpace::new();
            let n = space.add_range("N", 3);
            let vars: Vec<_> = (0..6).map(|q| space.add_var(&format!("x{q}"), n)).collect();
            let mut tensors = TensorTable::new();
            let mut tree = OpTree::new();
            // Random tree over 3-4 leaves.
            let nleaves = rng.usize_in(3..5);
            let mut nodes: Vec<NodeId> = (0..nleaves)
                .map(|li| {
                    let arity = rng.usize_in(1..4);
                    let mut set = IndexSet::EMPTY;
                    let mut idxs = Vec::new();
                    for _ in 0..arity {
                        let v = vars[rng.usize_in(0..vars.len())];
                        if !set.contains(v) {
                            set.insert(v);
                            idxs.push(v);
                        }
                    }
                    let dims = idxs.iter().map(|&v| space.range_of(v)).collect();
                    let t = tensors.add(TensorDecl::dense(&format!("T{trial}_{li}"), dims));
                    tree.leaf_input(t, idxs)
                })
                .collect();
            while nodes.len() > 1 {
                let a = nodes.swap_remove(rng.usize_in(0..nodes.len()));
                let b = nodes.swap_remove(rng.usize_in(0..nodes.len()));
                let combined = tree.node(a).indices.union(tree.node(b).indices);
                // Keep a random subset of the combined indices.
                let mut keep = IndexSet::EMPTY;
                for v in combined.iter() {
                    if rng.bool_with(0.6) {
                        keep.insert(v);
                    }
                }
                nodes.push(tree.contract(a, b, keep));
            }
            // Random configuration.
            let parents = tree.parents();
            let mut cfg = FusionConfig::unfused(&tree);
            for id in tree.postorder() {
                if id == tree.root {
                    continue;
                }
                let u = parents[id.0 as usize].unwrap();
                let fs = fusable_set(&tree, id, u);
                let mut pick = IndexSet::EMPTY;
                for v in fs.iter() {
                    if rng.bool_with(0.5) {
                        pick.insert(v);
                    }
                }
                cfg.set(id, pick);
            }
            let local = cfg.check(&tree).is_ok();
            let global = check_chainwise(&tree, &cfg).is_ok();
            assert_eq!(
                local, global,
                "trial {trial}: local={local} global={global} cfg={:?}",
                cfg.fused
            );
        }
    }
}
