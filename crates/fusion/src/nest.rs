//! Ordered nesting states for the fusion dynamic programs.
//!
//! The legality of a fusion configuration is the *global* chain-scope
//! condition; a bottom-up DP therefore needs more state than the set of
//! indices fused on the parent edge — it must know the *relative nesting*
//! of the chains passing through that edge, because an ordering
//! established at one node (chain `x` strictly enclosing chain `y`)
//! constrains how far each may extend below.  (Example: fusing a node on
//! `{x}` and its sibling subtree on `{x, y}` puts `y` strictly inside `x`;
//! `y`'s chain may then not continue into any edge `x` does not.)
//!
//! A [`NestState`] is the ordered partition of the parent-edge fused set:
//! classes of indices whose chains have identical scope so far, listed
//! outermost first.  [`derive_child_states`] checks one node's choices
//! against a state and produces the children's states; it is the complete
//! local characterization of the chain condition (validated against the
//! brute-force chain checker in tests).

use tce_ir::IndexSet;

/// Ordered partition of a fused set: classes outermost-first.
pub type NestState = Vec<IndexSet>;

/// Canonical encoding for memo keys.
pub fn encode_state(state: &NestState) -> Vec<u64> {
    state.iter().map(|s| s.0).collect()
}

/// All legal pairs of child nesting states for the choices `(c1, c2)` at a
/// node whose parent-edge fused set has nesting `state`.  Empty when the
/// combination is illegal.
///
/// Legality:
/// 1. membership patterns over the three incident edges must be pairwise
///    comparable, and
/// 2. a chain in an outer class may not have a pattern strictly contained
///    in that of a chain in an inner class (the inherited nesting must be
///    respected).
///
/// When a class of two or more chains flows into *both* children, the
/// relative nesting of its members must be decided here, once, and
/// identically on both sides — leaving them tied would let each subtree
/// refine the order independently (left deciding `x ⊃ y` while right
/// decides `y ⊃ x`), which composes into partially overlapping scopes
/// globally.  Every strict member order of such a group is one candidate;
/// no legal configuration is lost because an "inner" chain's scope is
/// merely bounded by the outer one's — equality stays reachable.  Groups
/// entering a single child stay whole: any later divergence is confined to
/// that subtree, where it is checked recursively.
pub fn derive_child_state_options(
    state: &NestState,
    c1: IndexSet,
    c2: IndexSet,
) -> Vec<(NestState, NestState)> {
    let p = state.iter().fold(IndexSet::EMPTY, |s, &c| s.union(c));
    let all = p.union(c1).union(c2);
    // Pattern bits: 1 = parent, 2 = left, 4 = right.
    // Inherit index: class position for members of p, usize::MAX otherwise.
    let mut vars: Vec<(tce_ir::IndexVar, u8, usize)> = Vec::with_capacity(all.len());
    for x in all.iter() {
        let pat =
            (p.contains(x) as u8) | ((c1.contains(x) as u8) << 1) | ((c2.contains(x) as u8) << 2);
        let inherit = state
            .iter()
            .position(|cl| cl.contains(x))
            .unwrap_or(usize::MAX);
        vars.push((x, pat, inherit));
    }
    for (i, &(_, pa, ia)) in vars.iter().enumerate() {
        for &(_, pb, ib) in &vars[i + 1..] {
            // Comparability.
            if pa & pb != pa && pa & pb != pb {
                return Vec::new();
            }
            // Inherited nesting: outer class (smaller index) must have a
            // superset pattern.
            if ia < ib && pa & pb != pb {
                return Vec::new(); // pb ⊄ pa
            }
            if ib < ia && pa & pb != pa {
                return Vec::new();
            }
        }
    }
    // Group the chains continuing into at least one child by
    // (pattern, inherited class); order groups outermost-first = by
    // pattern superset (popcount descending — patterns are comparable)
    // then by inherited class.
    let mut groups: Vec<(u8, usize, Vec<tce_ir::IndexVar>)> = Vec::new();
    for &(x, pat, inherit) in &vars {
        if pat & 0b110 == 0 {
            continue; // chain ends at this node
        }
        if let Some(g) = groups
            .iter_mut()
            .find(|(gp, gi, _)| *gp == pat && *gi == inherit)
        {
            g.2.push(x);
        } else {
            groups.push((pat, inherit, vec![x]));
        }
    }
    groups.sort_by_key(|&(pat, inherit, _)| (std::cmp::Reverse(pat.count_ones()), inherit));
    // Refinement options per group: both-children groups split into one
    // singleton class per member, in every strict order; others stay as a
    // single class.
    let options: Vec<Vec<Vec<IndexSet>>> = groups
        .iter()
        .map(|(pat, _, members)| {
            if pat & 0b110 == 0b110 && members.len() >= 2 {
                permutations(members)
                    .into_iter()
                    .map(|perm| perm.into_iter().map(|x| x.singleton()).collect())
                    .collect()
            } else {
                vec![vec![IndexSet::from_vars(members.iter().copied())]]
            }
        })
        .collect();
    // Cartesian product over the per-group choices; each combination is
    // applied identically to both child states.
    let mut out = Vec::new();
    let mut choice = vec![0usize; groups.len()];
    loop {
        let build = |edge_bit: u8| -> NestState {
            let mut s = Vec::new();
            for (g, (pat, _, _)) in groups.iter().enumerate() {
                if pat & edge_bit != 0 {
                    s.extend(options[g][choice[g]].iter().copied());
                }
            }
            s
        };
        out.push((build(2), build(4)));
        let mut g = 0;
        loop {
            if g == groups.len() {
                return out;
            }
            choice[g] += 1;
            if choice[g] < options[g].len() {
                break;
            }
            choice[g] = 0;
            g += 1;
        }
    }
}

/// All orderings of `items` (small groups only — factorial).
fn permutations(items: &[tce_ir::IndexVar]) -> Vec<Vec<tce_ir::IndexVar>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for i in 0..items.len() {
        let mut rest = items.to_vec();
        let head = rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

/// First legal child-state pair for `(c1, c2)`, or `None` when illegal —
/// the single-candidate view of [`derive_child_state_options`] for callers
/// that only need a legality probe.
pub fn derive_child_states(
    state: &NestState,
    c1: IndexSet,
    c2: IndexSet,
) -> Option<(NestState, NestState)> {
    derive_child_state_options(state, c1, c2).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_ir::IndexVar;

    fn set(vars: &[u8]) -> IndexSet {
        IndexSet::from_vars(vars.iter().map(|&v| IndexVar(v)))
    }

    #[test]
    fn empty_everything_is_legal() {
        let (s1, s2) = derive_child_states(&vec![], IndexSet::EMPTY, IndexSet::EMPTY).unwrap();
        assert!(s1.is_empty() && s2.is_empty());
    }

    #[test]
    fn incomparable_children_rejected() {
        assert!(derive_child_states(&vec![], set(&[0]), set(&[1])).is_none());
        // Equal or nested sibling sets are fine.
        assert!(derive_child_states(&vec![], set(&[0]), set(&[0])).is_some());
        assert!(derive_child_states(&vec![], set(&[0, 1]), set(&[0])).is_some());
    }

    #[test]
    fn inherited_order_blocks_divergence() {
        // Parent state: x0 strictly outside x1.  A child fusing x1 but not
        // x0 would let x1's chain escape x0's scope: illegal.
        let state = vec![set(&[0]), set(&[1])];
        assert!(derive_child_states(&state, set(&[1]), IndexSet::EMPTY).is_none());
        // Fusing both, or only the outer one, is fine.
        assert!(derive_child_states(&state, set(&[0, 1]), IndexSet::EMPTY).is_some());
        assert!(derive_child_states(&state, set(&[0]), IndexSet::EMPTY).is_some());
    }

    #[test]
    fn same_class_may_diverge() {
        // x0, x1 in one class (identical scopes so far): one may continue
        // into a child without the other.
        let state = vec![set(&[0, 1])];
        let (s1, _) = derive_child_states(&state, set(&[1]), IndexSet::EMPTY).unwrap();
        assert_eq!(s1, vec![set(&[1])]);
    }

    #[test]
    fn child_state_orders_by_pattern_then_inheritance() {
        // Parent state [x0 ⊃ x1]; both continue left, and a fresh x2 is
        // fused on both children (pattern {L,R}).  x2's pattern {L,R} vs
        // x0/x1's {P,L}: incomparable → illegal.
        let state = vec![set(&[0]), set(&[1])];
        assert!(derive_child_states(&state, set(&[0, 1, 2]), set(&[2])).is_none());
        // Without the sibling use, x2 joins the left state innermost-last
        // by inheritance order (fresh chains after inherited ones of equal
        // pattern).
        let (s1, _) = derive_child_states(&state, set(&[0, 1, 2]), IndexSet::EMPTY).unwrap();
        assert_eq!(s1, vec![set(&[0]), set(&[1]), set(&[2])]);
    }

    #[test]
    fn shared_class_into_both_children_is_ordered_consistently() {
        // A class entering both children must be refined into a strict
        // member order, identically on both sides — never left as a tie
        // each subtree could later refine differently (that composed into
        // partially overlapping scopes; found by tce-fuzz).
        let state = vec![set(&[0, 1])];
        let opts = derive_child_state_options(&state, set(&[0, 1]), set(&[0, 1]));
        assert_eq!(opts.len(), 2);
        for (s1, s2) in &opts {
            assert_eq!(s1, s2);
            assert_eq!(s1.len(), 2, "no ties: strict singleton classes");
        }
        assert!(opts.contains(&(vec![set(&[0]), set(&[1])], vec![set(&[0]), set(&[1])])));
        assert!(opts.contains(&(vec![set(&[1]), set(&[0])], vec![set(&[1]), set(&[0])])));
        // Fresh chains starting at this node into both children get the
        // same treatment.
        let opts = derive_child_state_options(&vec![], set(&[0, 1]), set(&[0, 1]));
        assert_eq!(opts.len(), 2);
        // A class entering a single child stays whole.
        let opts = derive_child_state_options(&state, set(&[0, 1]), IndexSet::EMPTY);
        assert_eq!(opts, vec![(vec![set(&[0, 1])], vec![])]);
    }

    #[test]
    fn regression_chain_escape_case() {
        // The proptest-found case: root fuses left on {x3} and right on
        // {x3, x4} → right child state [x3 ⊃ x4]; the right node then
        // fusing its own child on {x4} alone must be rejected.
        let (_, right_state) = derive_child_states(&vec![], set(&[3]), set(&[3, 4])).unwrap();
        assert_eq!(right_state, vec![set(&[3]), set(&[4])]);
        assert!(derive_child_states(&right_state, set(&[4]), IndexSet::EMPTY).is_none());
        // Fusing {x3, x4} downward is fine.
        assert!(derive_child_states(&right_state, set(&[3, 4]), IndexSet::EMPTY).is_some());
    }
}
