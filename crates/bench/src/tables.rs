//! Minimal fixed-width table rendering for the experiment harnesses.

/// A simple table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for c in 0..cols {
            width[c] = self.header[c].len();
            for r in &self.rows {
                width[c] = width[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = width[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
        }
        out
    }
}

/// Render a `u128` with thousands separators.
pub fn fmt_u(n: u128) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Render a float in compact scientific form.
pub fn fmt_e(x: f64) -> String {
    format!("{x:.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("12345"));
    }

    #[test]
    fn thousands_separators() {
        assert_eq!(fmt_u(0), "0");
        assert_eq!(fmt_u(999), "999");
        assert_eq!(fmt_u(1000), "1,000");
        assert_eq!(fmt_u(1234567890), "1,234,567,890");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new(&["a", "b"]).row(&["x".into()]);
    }
}
