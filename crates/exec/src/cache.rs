//! LRU memory-hierarchy simulator.
//!
//! The data-locality cost model of paper §6 estimates "the number of cache
//! misses as a function of tile sizes and loop bounds" by counting distinct
//! elements accessed per loop scope.  This module provides the measured
//! counterpart: a fully associative LRU cache (element granularity, with an
//! optional line size) fed by the interpreter's access stream, used to
//! validate the analytic model in the regimes it claims to cover — and to
//! drive the Fig. 4 tile-size sweep where "expensive paging in and out of
//! disk will be required" once the working set exceeds a level's capacity.

use crate::interp::AccessSink;
use std::collections::HashMap;

/// One level of the hierarchy: a fully associative LRU cache.
#[derive(Debug)]
pub struct LruCache {
    /// Capacity in lines.
    capacity: usize,
    /// Line size in elements (1 = element granularity, the paper's model).
    line: usize,
    /// line address → last-use stamp.
    resident: HashMap<u64, u64>,
    /// stamp → line address (ordered for eviction).
    order: std::collections::BTreeMap<u64, u64>,
    clock: u64,
    /// Total accesses.
    pub accesses: u64,
    /// Misses (fills).
    pub misses: u64,
}

impl LruCache {
    /// A cache holding `capacity_elements` elements with the given line
    /// size (in elements).
    ///
    /// # Panics
    /// Panics if `capacity_elements < line_elements` or `line_elements == 0`.
    pub fn new(capacity_elements: usize, line_elements: usize) -> Self {
        assert!(line_elements > 0, "line size must be positive");
        assert!(
            capacity_elements >= line_elements,
            "capacity below one line"
        );
        Self {
            capacity: capacity_elements / line_elements,
            line: line_elements,
            resident: HashMap::new(),
            order: std::collections::BTreeMap::new(),
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Touch one element address.
    pub fn touch(&mut self, addr: u64) {
        self.accesses += 1;
        self.clock += 1;
        let line = addr / self.line as u64;
        if let Some(stamp) = self.resident.insert(line, self.clock) {
            self.order.remove(&stamp);
            self.order.insert(self.clock, line);
            return;
        }
        self.misses += 1;
        self.order.insert(self.clock, line);
        if self.resident.len() > self.capacity {
            let (&old_stamp, &victim) = self.order.iter().next().expect("nonempty");
            self.order.remove(&old_stamp);
            self.resident.remove(&victim);
        }
    }

    /// Miss ratio of the accesses so far (0 if none).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Reset counters and contents.
    pub fn clear(&mut self) {
        self.resident.clear();
        self.order.clear();
        self.clock = 0;
        self.accesses = 0;
        self.misses = 0;
    }
}

/// An [`AccessSink`] that maps `(array, offset)` pairs into a flat address
/// space (arrays padded to disjoint regions) and feeds an [`LruCache`].
pub struct CacheSink {
    /// The simulated cache.
    pub cache: LruCache,
    /// Base address per array id.
    bases: Vec<u64>,
}

impl CacheSink {
    /// Build from per-array element counts (index = array id).
    pub fn new(cache: LruCache, array_sizes: &[usize]) -> Self {
        let mut bases = Vec::with_capacity(array_sizes.len());
        let mut next = 0u64;
        for &s in array_sizes {
            bases.push(next);
            next += s as u64;
        }
        Self { cache, bases }
    }
}

impl AccessSink for CacheSink {
    fn access(&mut self, array: u32, offset: usize) {
        let base = self.bases[array as usize];
        self.cache.touch(base + offset as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_within_capacity_misses_once_per_element() {
        let mut c = LruCache::new(100, 1);
        for pass in 0..3 {
            for a in 0..50u64 {
                c.touch(a);
            }
            let _ = pass;
        }
        assert_eq!(c.accesses, 150);
        assert_eq!(c.misses, 50); // only cold misses
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_under_lru() {
        // Classic LRU worst case: cyclic sweep over capacity+1 lines
        // misses on every access after warmup.
        let mut c = LruCache::new(10, 1);
        for _ in 0..5 {
            for a in 0..11u64 {
                c.touch(a);
            }
        }
        assert_eq!(c.misses, 55); // every access misses
    }

    #[test]
    fn line_size_amortizes_spatial_locality() {
        let mut c = LruCache::new(64, 8);
        for a in 0..64u64 {
            c.touch(a);
        }
        assert_eq!(c.misses, 8); // one per line
    }

    #[test]
    fn lru_keeps_recent() {
        let mut c = LruCache::new(2, 1);
        c.touch(1);
        c.touch(2);
        c.touch(1); // 1 most recent
        c.touch(3); // evicts 2
        c.touch(1);
        assert_eq!(c.misses, 3); // 1, 2, 3 cold; final 1 hits
    }

    #[test]
    fn clear_resets() {
        let mut c = LruCache::new(4, 1);
        c.touch(1);
        c.clear();
        assert_eq!(c.accesses, 0);
        c.touch(1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn cache_sink_separates_arrays() {
        let cache = LruCache::new(100, 1);
        let mut sink = CacheSink::new(cache, &[10, 10]);
        use crate::interp::AccessSink;
        sink.access(0, 5);
        sink.access(1, 5); // different global address
        assert_eq!(sink.cache.misses, 2);
        sink.access(0, 5);
        assert_eq!(sink.cache.misses, 2);
    }

    #[test]
    fn miss_ratio_bounds() {
        let mut c = LruCache::new(4, 1);
        assert_eq!(c.miss_ratio(), 0.0);
        c.touch(0);
        c.touch(0);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }
}
