//! Property tests for the language front-end.
//!
//! * parse → unparse → parse round-trips on seeded random specifications
//!   (generator driven by `tce_ir::rng`, the repo's deterministic
//!   SplitMix64);
//! * malformed inputs are rejected with an error, never a panic — also
//!   checked on every prefix of valid random specs.

use tce_ir::rng::Rng;
use tce_lang::{compile, unparse};

/// Pick `k` distinct elements of `0..n` (partial Fisher–Yates).
fn pick_distinct(rng: &mut Rng, n: usize, k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.usize_in(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Generate a random well-formed specification.
///
/// Index variables are declared grouped by range (the same order
/// `unparse` emits), so variable ids survive the round-trip; every
/// statement variable is routed into at least one factor, so all free
/// and summation indices are used.
fn gen_spec(seed: u64) -> String {
    let mut rng = Rng::new(seed);
    let mut src = String::new();

    let nr = rng.usize_in(1..3);
    for r in 0..nr {
        let e = rng.usize_in(2..7);
        src.push_str(&format!("range R{r} = {e};\n"));
    }
    // (name, range) pairs; the first range always gets >= 2 vars so every
    // statement can have both a free and a summation index.
    let mut vars: Vec<(String, usize)> = Vec::new();
    for r in 0..nr {
        let nv = if r == 0 {
            rng.usize_in(2..5)
        } else {
            rng.usize_in(1..4)
        };
        let names: Vec<String> = (0..nv).map(|k| format!("i{r}{k}")).collect();
        src.push_str(&format!("index {} : R{r};\n", names.join(", "), r = r));
        for n in names {
            vars.push((n, r));
        }
    }

    let mut tensor_decls: Vec<String> = Vec::new();
    let mut func_decls: Vec<String> = Vec::new();
    let mut stmts: Vec<String> = Vec::new();

    let ns = rng.usize_in(1..3);
    for s in 0..ns {
        let k = rng.usize_in(2..(vars.len().min(5) + 1));
        let chosen = pick_distinct(&mut rng, vars.len(), k);
        let l = rng.usize_in(1..k);
        let (lhs_vars, sum_vars) = chosen.split_at(l);

        let lhs_dims: Vec<String> = lhs_vars
            .iter()
            .map(|&v| format!("R{}", vars[v].1))
            .collect();
        tensor_decls.push(format!("tensor S{s}({});", lhs_dims.join(", ")));
        let lhs_names: Vec<&str> = lhs_vars.iter().map(|&v| vars[v].0.as_str()).collect();

        let nt = rng.usize_in(1..3);
        let mut terms: Vec<String> = Vec::new();
        for t in 0..nt {
            let nf = rng.usize_in(1..4).min(k);
            // Round-robin every statement variable into a factor.
            let mut factor_vars: Vec<Vec<usize>> = vec![Vec::new(); nf];
            for (pos, &v) in chosen.iter().enumerate() {
                factor_vars[pos % nf].push(v);
            }
            let mut factors: Vec<String> = Vec::new();
            for (j, fv) in factor_vars.iter().enumerate() {
                let names: Vec<&str> = fv.iter().map(|&v| vars[v].0.as_str()).collect();
                let dims: Vec<String> = fv.iter().map(|&v| format!("R{}", vars[v].1)).collect();
                if rng.bool_with(0.2) {
                    let cost = rng.u64_in(1..100);
                    func_decls.push(format!(
                        "function f{s}x{t}x{j}({}) cost {cost};",
                        dims.join(", ")
                    ));
                    factors.push(format!("f{s}x{t}x{j}({})", names.join(", ")));
                } else {
                    tensor_decls.push(format!("tensor T{s}x{t}x{j}({});", dims.join(", ")));
                    factors.push(format!("T{s}x{t}x{j}[{}]", names.join(",")));
                }
            }
            let coeff = if rng.bool_with(0.4) {
                let c = ["2", "0.5", "3", "1.5"][rng.usize_in(0..4)];
                format!("{c} * ")
            } else {
                String::new()
            };
            let sign = if t == 0 {
                ""
            } else if rng.bool_with(0.5) {
                " - "
            } else {
                " + "
            };
            terms.push(format!("{sign}{coeff}{}", factors.join(" * ")));
        }
        let sum_names: Vec<&str> = sum_vars.iter().map(|&v| vars[v].0.as_str()).collect();
        stmts.push(format!(
            "S{s}[{}] = sum[{}] {};",
            lhs_names.join(","),
            sum_names.join(","),
            terms.concat()
        ));
    }

    for d in tensor_decls {
        src.push_str(&d);
        src.push('\n');
    }
    for d in func_decls {
        src.push_str(&d);
        src.push('\n');
    }
    for st in stmts {
        src.push_str(&st);
        src.push('\n');
    }
    src
}

/// Structural equality of the pieces the round-trip must preserve.
fn assert_roundtrip(src: &str) {
    let p1 = compile(src).unwrap_or_else(|e| panic!("generated spec failed: {e}\n{src}"));
    let text = unparse(&p1);
    let p2 = compile(&text).unwrap_or_else(|e| panic!("unparse output failed: {e}\n{text}"));
    assert_eq!(
        p1.stmts, p2.stmts,
        "statements differ\n--- src\n{src}\n--- unparse\n{text}"
    );
    assert_eq!(p1.space.num_vars(), p2.space.num_vars());
    assert_eq!(p1.tensors.len(), p2.tensors.len());
    for (id, d1) in p1.tensors.iter() {
        let d2 = p2.tensors.get(id);
        assert_eq!(d1.name, d2.name);
        assert_eq!(d1.dims, d2.dims);
        assert_eq!(d1.symmetry, d2.symmetry);
        assert_eq!(d1.sparse, d2.sparse);
    }
}

#[test]
fn random_specs_roundtrip_through_unparse() {
    for seed in 0..200u64 {
        assert_roundtrip(&gen_spec(seed));
    }
}

#[test]
fn random_spec_prefixes_never_panic() {
    for seed in 0..40u64 {
        let src = gen_spec(seed);
        let mut rng = Rng::new(seed ^ 0x9E37);
        for _ in 0..16 {
            let mut cut = rng.usize_in(0..src.len() + 1);
            while !src.is_char_boundary(cut) {
                cut -= 1;
            }
            // Must return Ok or Err, never panic.
            let _ = compile(&src[..cut]);
        }
    }
}

#[test]
fn malformed_inputs_are_rejected() {
    let cases: &[(&str, &str)] = &[
        ("empty range extent", "range N = ;"),
        ("undeclared range in index", "range N = 4; index i : M;"),
        (
            "unbalanced tensor parens",
            "range N = 4; index i : N; tensor A(N;",
        ),
        (
            "unbalanced subscript",
            "range N = 4; index i, j : N; tensor A(N, N); tensor S(N);\
             S[i] = sum[j] A[i,j;",
        ),
        (
            "unknown tensor in statement",
            "range N = 4; index i, j : N; tensor S(N); S[i] = sum[j] B[i,j];",
        ),
        (
            "undeclared index in statement",
            "range N = 4; index i : N; tensor A(N, N); tensor S(N);\
             S[i] = sum[q] A[i,q];",
        ),
        (
            "tensor arity mismatch",
            "range N = 4; index i, j : N; tensor A(N); tensor S(N);\
             S[i] = sum[j] A[i,j];",
        ),
        ("missing semicolon then garbage", "range N = 4 index i : N;"),
        (
            "stray operator",
            "range N = 4; index i : N; tensor S(N); S[i] = * ;",
        ),
        (
            "trailing garbage",
            "range N = 4; index i, j : N; tensor A(N, N); tensor S(N);\
             S[i] = sum[j] A[i,j]; ???",
        ),
    ];
    for (what, src) in cases {
        assert!(compile(src).is_err(), "{what}: expected an error\n{src}");
    }
}
