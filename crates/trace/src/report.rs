//! Aggregated, human-readable summary of a [`Trace`](crate::Trace).
//!
//! The report answers the questions the bench harness and the CLI care
//! about without opening the chrome trace: where did wall time go per
//! pipeline stage, what FLOP rate did execution sustain, how much
//! intermediate memory was live at peak, and how well did the GETT plan
//! cache and the worker pool do.

use crate::{EventKind, Trace};
use std::fmt;

/// Wall time attributed to one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTime {
    /// Stage span name with the `stage.` prefix stripped (`opmin`, …).
    pub stage: String,
    /// Total ns across all spans of this stage.
    pub wall_ns: u64,
    /// Number of spans (a stage can run once per term).
    pub count: usize,
}

/// Summary statistics distilled from a trace.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Per-stage wall time, pipeline order.
    pub stages: Vec<StageTime>,
    /// Executed floating-point operations (GETT + interpreter).
    pub flops: u64,
    /// Wall ns of the execution stage (denominator for the FLOP rate).
    pub exec_wall_ns: u64,
    /// Bytes moved by traced tensor permutes.
    pub permute_bytes: u64,
    /// Time inside GETT packing across all threads, ns.
    pub gett_pack_ns: u64,
    /// Time inside the GETT micro-kernel across all threads, ns.
    pub gett_kernel_ns: u64,
    /// GETT plan-cache hits.
    pub plan_cache_hits: u64,
    /// GETT plan-cache misses.
    pub plan_cache_misses: u64,
    /// GETT plan-cache evictions (inserts past capacity).
    pub plan_cache_evictions: u64,
    /// GETT executions per dispatched kernel variant, `(name, count)`;
    /// normally one entry, more when variants were mixed in-process.
    pub kernel_variants: Vec<(String, u64)>,
    /// Largest GETT macro-tile blocks seen, `(mc, nc, kc)`; zero when no
    /// traced GETT execution ran.
    pub gett_blocks: (u64, u64, u64),
    /// Worker-pool busy time across workers, ns.
    pub pool_busy_ns: u64,
    /// Worker-pool idle time across workers, ns.
    pub pool_idle_ns: u64,
    /// High-water mark of traced intermediate memory, bytes.
    pub mem_peak_bytes: u64,
    /// Interpreter element loads.
    pub interp_reads: u64,
    /// Interpreter element stores.
    pub interp_writes: u64,
    /// Task-graph tasks scheduled (summed over all graph runs).
    pub sched_tasks: u64,
    /// Task-graph dependency edges.
    pub sched_edges: u64,
    /// Largest single-run peak live-set admitted by the scheduler, in
    /// weight units (elements).
    pub sched_peak_live: u64,
    /// Forced admissions (cap too small for any ready task while idle).
    pub sched_forced_admissions: u64,
    /// Buffer-pool acquires served from retained buffers.
    pub bufpool_hits: u64,
    /// Buffer-pool acquires that allocated fresh.
    pub bufpool_misses: u64,
    /// Buffer releases dropped because the pool was at capacity.
    pub bufpool_evictions: u64,
    /// Calibration-model predicted execution wall time, ns (0 when no
    /// calibration profile was loaded).
    pub calib_predicted_ns: u64,
    /// Measured execution wall time paired with the prediction, ns.
    pub calib_measured_ns: u64,
    /// Predicted/measured ratio in milli-units (1000 = exact).
    pub calib_ratio_milli: u64,
}

/// Pipeline stage order for the report (matches the paper's Fig. 5).
const STAGE_ORDER: [&str; 6] = [
    "opmin",
    "fusion",
    "spacetime",
    "locality",
    "distribution",
    "exec",
];

impl ProfileReport {
    /// Build a report from a collected trace.
    pub fn from_trace(t: &Trace) -> Self {
        let mut stages: Vec<StageTime> = Vec::new();
        for e in &t.events {
            if let Some(stage) = e.name.strip_prefix("stage.") {
                if let EventKind::Span { begin_ns, end_ns } = e.kind {
                    let dur = end_ns.saturating_sub(begin_ns);
                    match stages.iter_mut().find(|s| s.stage == stage) {
                        Some(s) => {
                            s.wall_ns += dur;
                            s.count += 1;
                        }
                        None => stages.push(StageTime {
                            stage: stage.to_string(),
                            wall_ns: dur,
                            count: 1,
                        }),
                    }
                }
            }
        }
        stages.sort_by_key(|s| {
            STAGE_ORDER
                .iter()
                .position(|&o| o == s.stage)
                .unwrap_or(STAGE_ORDER.len())
        });
        let exec_wall_ns = stages
            .iter()
            .find(|s| s.stage == "exec")
            .map(|s| s.wall_ns)
            .unwrap_or(0);
        ProfileReport {
            flops: t.counter_total("gett.flops") + t.counter_total("exec.interp.flops"),
            exec_wall_ns,
            permute_bytes: t.counter_total("permute.bytes"),
            gett_pack_ns: t.counter_total("gett.pack_ns"),
            gett_kernel_ns: t.counter_total("gett.kernel_ns"),
            plan_cache_hits: t.counter_total("plan_cache.hits"),
            plan_cache_misses: t.counter_total("plan_cache.misses"),
            plan_cache_evictions: t.counter_total("plan_cache.evictions"),
            kernel_variants: {
                let mut vs: Vec<(String, u64)> = Vec::new();
                for e in &t.events {
                    if let Some(name) = e.name.strip_prefix("gett.kernel_variant.") {
                        if let EventKind::Counter { delta, .. } = e.kind {
                            match vs.iter_mut().find(|(n, _)| n == name) {
                                Some((_, c)) => *c += delta,
                                None => vs.push((name.to_string(), delta)),
                            }
                        }
                    }
                }
                vs.sort_by_key(|v| std::cmp::Reverse(v.1));
                vs
            },
            gett_blocks: (
                t.counter_max("gett.mc"),
                t.counter_max("gett.nc"),
                t.counter_max("gett.kc"),
            ),
            pool_busy_ns: t.counter_total("pool.busy_ns"),
            pool_idle_ns: t.counter_total("pool.idle_ns"),
            mem_peak_bytes: t.mem_peak_bytes,
            interp_reads: t.counter_total("exec.interp.reads"),
            interp_writes: t.counter_total("exec.interp.writes"),
            sched_tasks: t.counter_total("sched.tasks"),
            sched_edges: t.counter_total("sched.edges"),
            sched_peak_live: t.counter_max("sched.peak_live"),
            sched_forced_admissions: t.counter_total("sched.forced_admissions"),
            bufpool_hits: t.counter_total("bufpool.hits"),
            bufpool_misses: t.counter_total("bufpool.misses"),
            bufpool_evictions: t.counter_total("bufpool.evictions"),
            calib_predicted_ns: t.counter_total("calib.predicted_ns"),
            calib_measured_ns: t.counter_total("calib.measured_ns"),
            calib_ratio_milli: t.counter_max("calib.ratio_milli"),
            stages,
        }
    }

    /// Sustained GFLOP/s over the execution stage (0 when nothing ran).
    pub fn gflops(&self) -> f64 {
        if self.exec_wall_ns == 0 {
            return 0.0;
        }
        self.flops as f64 / self.exec_wall_ns as f64
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "profile report")?;
        writeln!(f, "  stage wall time:")?;
        for s in &self.stages {
            writeln!(
                f,
                "    {:<13} {:>12}  (x{})",
                s.stage,
                fmt_ns(s.wall_ns),
                s.count
            )?;
        }
        if self.stages.is_empty() {
            writeln!(f, "    (no stage spans recorded)")?;
        }
        writeln!(f, "  executed flops:  {}", self.flops)?;
        if self.exec_wall_ns > 0 {
            writeln!(f, "  flop rate:       {:.3} GFLOP/s", self.gflops())?;
        }
        if self.interp_reads + self.interp_writes > 0 {
            writeln!(
                f,
                "  interp accesses: {} loads, {} stores",
                self.interp_reads, self.interp_writes
            )?;
        }
        if self.gett_pack_ns + self.gett_kernel_ns > 0 {
            writeln!(
                f,
                "  gett thread-time: pack {} / kernel {}",
                fmt_ns(self.gett_pack_ns),
                fmt_ns(self.gett_kernel_ns)
            )?;
        }
        if self.permute_bytes > 0 {
            writeln!(f, "  permute traffic: {}", fmt_bytes(self.permute_bytes))?;
        }
        if !self.kernel_variants.is_empty() {
            let variants = self
                .kernel_variants
                .iter()
                .map(|(n, c)| format!("{n} x{c}"))
                .collect::<Vec<_>>()
                .join(", ");
            let (mc, nc, kc) = self.gett_blocks;
            writeln!(f, "  gett kernel:     {variants} (MC={mc} NC={nc} KC={kc})")?;
        }
        if self.plan_cache_hits + self.plan_cache_misses > 0 {
            writeln!(
                f,
                "  plan cache:      {} hits / {} misses / {} evictions",
                self.plan_cache_hits, self.plan_cache_misses, self.plan_cache_evictions
            )?;
        }
        if self.sched_tasks > 0 {
            writeln!(
                f,
                "  task graph:      {} tasks / {} edges, peak live {} elements, {} forced",
                self.sched_tasks,
                self.sched_edges,
                self.sched_peak_live,
                self.sched_forced_admissions
            )?;
        }
        if self.bufpool_hits + self.bufpool_misses > 0 {
            writeln!(
                f,
                "  buffer pool:     {} hits / {} misses / {} evictions",
                self.bufpool_hits, self.bufpool_misses, self.bufpool_evictions
            )?;
        }
        if self.pool_busy_ns + self.pool_idle_ns > 0 {
            let total = (self.pool_busy_ns + self.pool_idle_ns) as f64;
            writeln!(
                f,
                "  pool workers:    busy {} / idle {} ({:.1}% busy)",
                fmt_ns(self.pool_busy_ns),
                fmt_ns(self.pool_idle_ns),
                100.0 * self.pool_busy_ns as f64 / total
            )?;
        }
        if self.calib_measured_ns > 0 {
            writeln!(
                f,
                "  calibration:     predicted {} / measured {} (ratio {:.2})",
                fmt_ns(self.calib_predicted_ns),
                fmt_ns(self.calib_measured_ns),
                self.calib_ratio_milli as f64 / 1000.0
            )?;
        }
        writeln!(f, "  mem high-water:  {}", fmt_bytes(self.mem_peak_bytes))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, EventKind};
    use std::borrow::Cow;

    fn span_ev(name: &'static str, begin: u64, end: u64) -> Event {
        Event {
            name: Cow::Borrowed(name),
            tid: 0,
            kind: EventKind::Span {
                begin_ns: begin,
                end_ns: end,
            },
        }
    }

    fn counter_ev(name: &'static str, delta: u64) -> Event {
        Event {
            name: Cow::Borrowed(name),
            tid: 0,
            kind: EventKind::Counter { at_ns: 0, delta },
        }
    }

    #[test]
    fn report_aggregates_and_orders_stages() {
        let t = Trace {
            events: vec![
                span_ev("stage.exec", 100, 1100),
                span_ev("stage.opmin", 0, 50),
                span_ev("stage.opmin", 50, 80),
                span_ev("stage.fusion", 80, 100),
                counter_ev("gett.flops", 2000),
                counter_ev("exec.interp.flops", 500),
                counter_ev("plan_cache.hits", 3),
                counter_ev("plan_cache.misses", 1),
                counter_ev("plan_cache.evictions", 2),
                counter_ev("gett.kernel_variant.avx2", 1),
                counter_ev("gett.kernel_variant.avx2", 1),
                counter_ev("gett.kernel_variant.scalar", 1),
                counter_ev("gett.mc", 64),
                counter_ev("gett.mc", 512),
                counter_ev("gett.nc", 1020),
                counter_ev("gett.kc", 256),
                counter_ev("sched.tasks", 7),
                counter_ev("sched.edges", 6),
                counter_ev("sched.peak_live", 37),
                counter_ev("sched.peak_live", 21),
                counter_ev("sched.forced_admissions", 0),
                counter_ev("bufpool.hits", 5),
                counter_ev("bufpool.misses", 2),
                counter_ev("bufpool.evictions", 1),
            ],
            mem_peak_bytes: 4096,
        };
        let r = t.report();
        let order: Vec<&str> = r.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(order, vec!["opmin", "fusion", "exec"]);
        assert_eq!(r.stages[0].wall_ns, 80);
        assert_eq!(r.stages[0].count, 2);
        assert_eq!(r.flops, 2500);
        assert_eq!(r.exec_wall_ns, 1000);
        assert!((r.gflops() - 2.5).abs() < 1e-9);
        assert_eq!(r.plan_cache_hits, 3);
        assert_eq!(r.plan_cache_evictions, 2);
        assert_eq!(
            r.kernel_variants,
            vec![("avx2".to_string(), 2), ("scalar".to_string(), 1)]
        );
        assert_eq!(r.gett_blocks, (512, 1020, 256));
        assert_eq!(r.mem_peak_bytes, 4096);
        assert_eq!(r.sched_tasks, 7);
        assert_eq!(r.sched_edges, 6);
        assert_eq!(r.sched_peak_live, 37, "peak live is a max, not a sum");
        assert_eq!(r.sched_forced_admissions, 0);
        assert_eq!(
            (r.bufpool_hits, r.bufpool_misses, r.bufpool_evictions),
            (5, 2, 1)
        );
        let text = r.to_string();
        assert!(text.contains("opmin"));
        assert!(text.contains("GFLOP/s"));
        assert!(text.contains("4.00 KiB"));
        assert!(text.contains("avx2 x2, scalar x1 (MC=512 NC=1020 KC=256)"));
        assert!(text.contains("3 hits / 1 misses / 2 evictions"));
        assert!(text.contains("7 tasks / 6 edges, peak live 37 elements, 0 forced"));
        assert!(text.contains("5 hits / 2 misses / 1 evictions"));
    }

    #[test]
    fn calibration_counters_surface() {
        let t = Trace {
            events: vec![
                counter_ev("calib.predicted_ns", 2_000_000),
                counter_ev("calib.measured_ns", 4_000_000),
                counter_ev("calib.ratio_milli", 500),
            ],
            mem_peak_bytes: 0,
        };
        let r = t.report();
        assert_eq!(
            (
                r.calib_predicted_ns,
                r.calib_measured_ns,
                r.calib_ratio_milli
            ),
            (2_000_000, 4_000_000, 500)
        );
        let text = r.to_string();
        assert!(
            text.contains("calibration:     predicted 2.000 ms / measured 4.000 ms (ratio 0.50)"),
            "{text}"
        );
        // No calibration counters → no line.
        assert!(!Trace::default()
            .report()
            .to_string()
            .contains("calibration"));
    }

    #[test]
    fn empty_trace_renders() {
        let r = Trace::default().report();
        assert_eq!(r.gflops(), 0.0);
        assert!(r.to_string().contains("no stage spans"));
    }
}
