//! # tce-opmin — algebraic transformations (operation minimization)
//!
//! The first optimization stage of the synthesis system (paper §2, §4):
//! rewrite a sum-of-products tensor expression, using commutativity,
//! associativity and distributivity, into the sequence of binary
//! contractions with minimal arithmetic cost.
//!
//! * [`single`] — single-term search (subset DP, exhaustive oracle, and the
//!   paper's pruning branch-and-bound);
//! * [`multi`] — per-term optimization plus common-subexpression
//!   factorization across terms.
//!
//! ```
//! use tce_opmin::{optimize_subset_dp, OpMinProblem};
//! use tce_ir::{IndexSet, IndexSpace, Leaf, TensorDecl, TensorTable};
//!
//! // A[i,j]·B[j,k]·C[k,l] with a skewed middle dimension.
//! let mut sp = IndexSpace::new();
//! let big = sp.add_range("BIG", 100);
//! let small = sp.add_range("SML", 2);
//! let i = sp.add_var("i", small);
//! let j = sp.add_var("j", big);
//! let k = sp.add_var("k", small);
//! let l = sp.add_var("l", big);
//! let mut tab = TensorTable::new();
//! let a = tab.add(TensorDecl::dense("A", vec![small, big]));
//! let b = tab.add(TensorDecl::dense("B", vec![big, small]));
//! let c = tab.add(TensorDecl::dense("C", vec![small, big]));
//! let p = OpMinProblem {
//!     output: IndexSet::from_vars([i, l]),
//!     factors: vec![
//!         Leaf::Input { tensor: a, indices: vec![i, j] },
//!         Leaf::Input { tensor: b, indices: vec![j, k] },
//!         Leaf::Input { tensor: c, indices: vec![k, l] },
//!     ],
//! };
//! let best = optimize_subset_dp(&p, &sp);
//! // (A·B)·C: 2·(2·100·2) + 2·(2·2·100) flops.
//! assert_eq!(best.contraction_ops, 1600);
//! ```

#![warn(missing_docs)]

pub mod multi;
pub mod single;

pub use multi::{optimize_assignment, MultiResult};
pub use single::{
    leaf_indices, optimize_branch_bound, optimize_exhaustive, optimize_pareto, optimize_subset_dp,
    OpMinProblem, OptResult, ParetoTree,
};
