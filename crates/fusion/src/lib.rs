//! # tce-fusion — loop fusion for memory minimization
//!
//! The paper's Memory Minimization module (§5): fusion graphs and chains,
//! legality of fusion configurations, the bottom-up dynamic program that
//! finds the configuration minimizing total intermediate storage (without
//! changing the operation count), and code generation of the fused
//! imperfectly-nested loop program.
//!
//! ```
//! use tce_fusion::memmin_dp;
//! use tce_ir::{IndexSet, IndexSpace, OpTree, TensorDecl, TensorTable};
//!
//! // T[i] = Σ_j A[i,j]·B[j]; S = Σ_i T[i]·C[i] — T fuses to a scalar.
//! let mut sp = IndexSpace::new();
//! let n = sp.add_range("N", 100);
//! let i = sp.add_var("i", n);
//! let j = sp.add_var("j", n);
//! let mut tab = TensorTable::new();
//! let a = tab.add(TensorDecl::dense("A", vec![n, n]));
//! let b = tab.add(TensorDecl::dense("B", vec![n]));
//! let c = tab.add(TensorDecl::dense("C", vec![n]));
//! let mut tree = OpTree::new();
//! let la = tree.leaf_input(a, vec![i, j]);
//! let lb = tree.leaf_input(b, vec![j]);
//! let t = tree.contract(la, lb, i.singleton());
//! let lc = tree.leaf_input(c, vec![i]);
//! tree.contract(t, lc, IndexSet::EMPTY);
//! let r = memmin_dp(&tree, &sp);
//! assert_eq!(r.memory, 1); // T reduced from 100 elements to a scalar
//! ```

#![warn(missing_docs)]

pub mod chains;
pub mod codegen;
pub mod config;
pub mod graph;
pub mod memmin;
pub mod nest;
pub mod schedule;

pub use chains::{chains_of, check_chainwise, Chain};
pub use codegen::fused_program;
pub use config::{fusable_set, is_fusable_producer, FusionConfig};
pub use graph::{FusionEdge, FusionGraph};
pub use memmin::{
    enumerate_legal_configs, memmin_bruteforce, memmin_dp, patterns_comparable, MemMinResult,
};
pub use nest::{derive_child_state_options, derive_child_states, encode_state, NestState};
pub use schedule::{fusion_schedule, FusionSchedule, ScheduleStep};
