//! Fixed-seed fuzz conformance smoke corpus, wired into `cargo test`.
//!
//! Pins a deterministic campaign of generated expressions through the full
//! invariant catalog (executor differentials, cost-model conformance,
//! distributed communication volumes, sparse-vs-dense, round trips), plus
//! meta-tests proving the harness itself works: determinism of the
//! expression stream, and an intentionally injected executor bug being
//! caught and shrunk to a tiny repro.
//!
//! Override the campaign seed with `TCE_TEST_SEED` (decimal or `0x` hex);
//! the active seed is printed on failure.

use tce_fuzz::{
    case_seed, check_program, gen_case, repro_source, run_campaign, CheckConfig, CheckKind,
    CheckSet, Fault, FuzzConfig, GenConfig,
};
use tce_ir::rng::{seed_from_env, SeedGuard};

const SMOKE_SEED: u64 = 0xF0CC_5EED;

/// Smoke corpus size.  The acceptance bar is ≥200 expressions through all
/// checks; debug builds run the same corpus (the generator's smoke shapes
/// keep every tensor tiny).
const SMOKE_BUDGET: usize = 200;

#[test]
fn smoke_corpus_passes_all_checks() {
    let seed = seed_from_env(SMOKE_SEED);
    let _guard = SeedGuard::new("smoke_corpus_passes_all_checks", seed);
    let cfg = FuzzConfig::new(seed, SMOKE_BUDGET);
    let report = run_campaign(&cfg);
    assert_eq!(report.cases, SMOKE_BUDGET);
    for f in &report.failures {
        eprintln!(
            "case {} (seed {:#x}) failed {}: {}\nminimized:\n{}",
            f.case, f.case_seed, f.kind, f.detail, f.shrunk_src
        );
    }
    assert!(
        report.passed(),
        "{} of {} cases failed conformance",
        report.failures.len(),
        report.cases
    );
    // The corpus must actually exercise the catalog, not vacuously pass.
    assert!(report.stats.executor_runs >= SMOKE_BUDGET * 3);
    assert!(report.stats.grids >= SMOKE_BUDGET);
    assert!(report.stats.model_checks >= SMOKE_BUDGET);
    assert!(report.stats.sparse_pairs > 0, "no sparse pairs exercised");
    assert!(
        report.stats.kernel_variants > 0,
        "no kernel variants exercised"
    );
}

#[test]
fn extended_corpus_passes_all_checks() {
    // A smaller run over the larger grammar (3 ranges, deeper statements).
    let seed = seed_from_env(SMOKE_SEED ^ 0xE);
    let _guard = SeedGuard::new("extended_corpus_passes_all_checks", seed);
    let mut cfg = FuzzConfig::new(seed, if cfg!(debug_assertions) { 20 } else { 60 });
    cfg.gen = GenConfig::extended();
    let report = run_campaign(&cfg);
    for f in &report.failures {
        eprintln!(
            "case {} (seed {:#x}) failed {}: {}\nminimized:\n{}",
            f.case, f.case_seed, f.kind, f.detail, f.shrunk_src
        );
    }
    assert!(report.passed());
}

#[test]
fn campaign_is_deterministic() {
    // Identical seeds → identical expression stream and identical verdicts,
    // independent of budget.
    let gen = GenConfig::smoke();
    for case in 0..30 {
        let a = tce_lang::unparse(&gen_case(0x5EED, case, &gen));
        let b = tce_lang::unparse(&gen_case(0x5EED, case, &gen));
        assert_eq!(a, b, "case {case} diverged across regenerations");
        assert_eq!(case_seed(0x5EED, case), case_seed(0x5EED, case));
    }
    // Different campaign seeds decorrelate the stream.
    let a = tce_lang::unparse(&gen_case(0x5EED, 0, &gen));
    let b = tce_lang::unparse(&gen_case(0x5EEE, 0, &gen));
    assert_ne!(a, b);

    let mut cfg = FuzzConfig::new(0x5EED, 12);
    cfg.check.set = CheckSet {
        dist: false,
        ..CheckSet::all()
    };
    let r1 = run_campaign(&cfg);
    let r2 = run_campaign(&cfg);
    assert_eq!(r1.cases, r2.cases);
    assert_eq!(r1.failures.len(), r2.failures.len());
    assert_eq!(r1.stats.executor_runs, r2.stats.executor_runs);
    assert_eq!(r1.stats.sparse_pairs, r2.stats.sparse_pairs);
}

#[test]
fn injected_bug_is_caught_and_shrunk() {
    // Prove the harness catches a real executor bug and minimizes it: a
    // fault biasing the GETT tree executor on any true contraction must be
    // flagged as an exec-diff and shrunk to a repro of at most 3 operands.
    let seed = seed_from_env(SMOKE_SEED ^ 0xB06);
    let _guard = SeedGuard::new("injected_bug_is_caught_and_shrunk", seed);
    let mut cfg = FuzzConfig::new(seed, 40);
    cfg.check.set = CheckSet {
        exec: true,
        cost: false,
        dist: false,
        sparse: false,
        roundtrip: false,
        sched: false,
    };
    cfg.check.fault = Some(Fault::TreeExecBias);
    let report = run_campaign(&cfg);
    assert!(
        !report.failures.is_empty(),
        "injected tree-executor fault was not caught in {} cases",
        report.cases
    );
    let f = &report.failures[0];
    assert_eq!(
        f.kind,
        CheckKind::ExecDiff,
        "fault misattributed: {}",
        f.detail
    );
    assert!(
        f.shrunk_operands <= 3,
        "repro not minimized: {} operands\n{}",
        f.shrunk_operands,
        f.shrunk_src
    );
    // The minimized repro must still contain a true contraction (the fault
    // only fires on ≥2-factor terms) and still reproduce the failure.
    assert!(f.shrunk_operands >= 2);
    let shrunk = tce_lang::compile(&f.shrunk_src).expect("shrunk repro must compile");
    let replay = check_program(&shrunk, &{
        let mut ck = cfg.check.clone();
        ck.data_seed = tce_ir::rng::split_seed(ck.data_seed ^ f.case_seed);
        ck
    });
    assert!(
        matches!(replay, Err(ref e) if e.kind == CheckKind::ExecDiff),
        "minimized repro no longer reproduces: {replay:?}"
    );
    // The self-contained repro file (metadata header + source) compiles
    // as-is — `#` lines are comments to the lexer.
    let text = repro_source(f, cfg.seed);
    assert!(text.contains("# tce-fuzz repro"));
    tce_lang::compile(&text).expect("repro file with metadata header must compile");

    // Without the fault, the same stream is clean: the harness is not
    // flagging healthy executors.
    let mut clean = cfg.clone();
    clean.check.fault = None;
    assert!(run_campaign(&clean).passed());
}

#[test]
fn generated_corpus_is_structurally_diverse() {
    // The generator must actually produce the features the catalog claims
    // to cover: multi-term statements, function factors, accumulations,
    // shared intermediates (a tensor read after being written).
    let gen = GenConfig::smoke();
    let (mut multi_term, mut funcs, mut accum, mut reuse) = (0, 0, 0, 0);
    for case in 0..SMOKE_BUDGET {
        let p = gen_case(SMOKE_SEED, case, &gen);
        p.validate().expect("generated program must validate");
        let mut written = Vec::new();
        for stmt in &p.stmts {
            if stmt.terms.len() > 1 {
                multi_term += 1;
            }
            if stmt.accumulate {
                accum += 1;
            }
            for term in &stmt.terms {
                for factor in &term.factors {
                    match factor {
                        tce_ir::Factor::Func(_) => funcs += 1,
                        tce_ir::Factor::Tensor(r) => {
                            if written.contains(&r.tensor) {
                                reuse += 1;
                            }
                        }
                    }
                }
            }
            written.push(stmt.lhs.tensor);
        }
    }
    assert!(
        multi_term > 10,
        "too few multi-term statements: {multi_term}"
    );
    assert!(funcs > 10, "too few function factors: {funcs}");
    assert!(accum > 5, "too few accumulate statements: {accum}");
    assert!(reuse > 10, "too few shared intermediates: {reuse}");
}

#[test]
fn check_parsing_matches_cli_contract() {
    assert_eq!(CheckSet::parse("all").unwrap(), CheckSet::all());
    let s = CheckSet::parse("exec,cost").unwrap();
    assert!(s.exec && s.cost && !s.dist && !s.sparse && !s.roundtrip && !s.sched);
    let s = CheckSet::parse("sched").unwrap();
    assert!(s.sched && !s.exec && !s.cost && !s.dist && !s.sparse && !s.roundtrip);
    assert!(CheckSet::parse("bogus").is_err());
    assert!(CheckSet::parse("").is_err());
    let _ = CheckConfig::default();
}
