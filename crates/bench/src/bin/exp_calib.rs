//! exp_calib — calibration-model prediction error per pipeline stage.
//!
//! Calibrates the host with a short probe budget, then compiles and
//! executes the §2 CCSD term and the A3A energy example under the
//! measured rates, recording the calibrated cost model's predicted
//! execution time against the measured wall time, plus per-stage
//! compile-time wall clock for context.  Writes the measurements to
//! `BENCH_calib.json`.
//!
//! ```text
//! exp_calib [--out BENCH_calib.json] [--budget-ms N] [--threads T]
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;
use tce_core::calib::probe::{run_probes, ProbeOptions};
use tce_core::scenarios::section2_source;
use tce_core::serve::{bind_functions, bind_random_inputs};
use tce_core::{synthesize, ExecOptions, SynthesisConfig};

fn a3a_source() -> String {
    "
    range V = 8;
    range O = 4;
    index a, c, e, f, b1 : V;
    index i1, j1, k1 : O;
    tensor T(O, O, V, V);
    tensor X(V, V, V, V);
    tensor Y(V, V, V, V);
    tensor E();
    function f1(V, V, V, O) cost 1000;
    function f2(V, V, V, O) cost 1000;
    X[a,e,c,f] = sum[i1,j1] T[i1,j1,a,e] * T[i1,j1,c,f];
    Y[c,e,a,f] = sum[b1,k1] f1(c,e,b1,k1) * f2(a,f,b1,k1);
    E = sum[a,c,e,f] X[a,e,c,f] * Y[c,e,a,f];
    "
    .to_string()
}

fn main() {
    let mut out_path = "BENCH_calib.json".to_string();
    let mut budget_ms = 300u64;
    let mut threads = tce_core::par::default_threads();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--budget-ms" => {
                budget_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--budget-ms needs a positive integer");
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    println!("exp_calib: predicted vs. measured execution under measured rates\n");
    let calib_started = Instant::now();
    let profile = run_probes(&ProbeOptions {
        budget_ms,
        ..ProbeOptions::default()
    });
    let calib_ns = calib_started.elapsed().as_nanos();
    let variant = tce_core::tensor::kernels::active().name();
    let rates = profile.rates(variant);
    println!(
        "calibrated in {:.1} ms (variant {variant}, flop {:.3}/{:.3}/{:.3} ns, copy {:.3} ns/elem)",
        calib_ns as f64 / 1e6,
        rates.flop_ns_small,
        rates.flop_ns_medium,
        rates.flop_ns_large,
        rates.copy_ns
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"calib\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"budget_ms\": {budget_ms},");
    let _ = writeln!(json, "  \"variant\": \"{variant}\",");
    let _ = writeln!(json, "  \"calibrate_ns\": {calib_ns},");
    let _ = writeln!(json, "  \"cases\": [");

    let cases: Vec<(&str, String)> = vec![
        ("ccsd_section2_n6", section2_source(6)),
        ("ccsd_section2_n10", section2_source(10)),
        ("a3a_energy", a3a_source()),
    ];
    let n_cases = cases.len();
    for (ci, (name, src)) in cases.into_iter().enumerate() {
        let cfg = SynthesisConfig {
            calibration: Some(rates.clone()),
            ..SynthesisConfig::default()
        };
        let compile_started = Instant::now();
        let syn = synthesize(&src, &cfg).expect("synthesis");
        let compile_ns = compile_started.elapsed().as_nanos();

        let owned = bind_random_inputs(&syn, 42);
        let inputs: HashMap<_, _> = owned.iter().map(|(id, t)| (*id, t)).collect();
        let funcs = bind_functions(&syn, 42);
        let opts = ExecOptions::with_threads(threads);
        // Warm-up (plan cache, buffer pool, worker pool), then measure.
        syn.execute_opts(&inputs, &funcs, &opts).expect("execute");
        let exec_started = Instant::now();
        syn.execute_opts(&inputs, &funcs, &opts).expect("execute");
        let measured_ns = exec_started.elapsed().as_nanos() as f64;
        let predicted_ns = syn.predicted_exec_ns(&rates);
        let ratio = predicted_ns / measured_ns.max(1.0);

        println!(
            "{name}: compile {:.2} ms, predicted {:.3} ms / measured {:.3} ms (ratio {ratio:.3})",
            compile_ns as f64 / 1e6,
            predicted_ns / 1e6,
            measured_ns / 1e6
        );

        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{name}\",");
        let _ = writeln!(json, "      \"compile_ns\": {compile_ns},");
        let _ = writeln!(json, "      \"predicted_ns\": {:.0},", predicted_ns);
        let _ = writeln!(json, "      \"measured_ns\": {:.0},", measured_ns);
        let _ = writeln!(json, "      \"ratio\": {ratio}");
        let _ = writeln!(json, "    }}{}", if ci + 1 < n_cases { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out_path}");
}
