//! Imperfectly-nested loop IR.
//!
//! The output representation of the synthesis pipeline: explicit loop nests
//! over declared loop variables, with statements that initialize arrays,
//! accumulate products (`lhs += Π rhs`), or evaluate primitive functions
//! (`lhs = f(args)`).  Fusion produces imperfect nesting (paper Fig. 1(c));
//! tiling splits an index loop into a tile/intra-tile pair (Fig. 4), with
//! references to the original index written as `tile·B + intra`.
//!
//! The IR is deliberately *concrete*: every analysis the paper's cost
//! models need (array space, operation counts, distinct-elements-accessed)
//! is computed by walking this structure, and `tce-exec` interprets it
//! directly against real data to verify that every transformation is
//! semantics-preserving.

use tce_ir::{IndexSpace, IndexVar, TensorId};

/// Identifier of a loop variable within one [`LoopProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopVarId(pub u32);

/// Identifier of an array within one [`LoopProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub u32);

/// Identifier of a primitive function within one [`LoopProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// How a loop variable ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarRange {
    /// The full extent of a source index variable.
    Full(IndexVar),
    /// Tile counter of a source index tiled with `block`:
    /// extent `⌈extent(index) / block⌉`.
    Tile {
        /// The tiled source index.
        index: IndexVar,
        /// Block size.
        block: usize,
    },
    /// Intra-tile offset of a source index tiled with `block`: extent
    /// `block`.
    Intra {
        /// The tiled source index.
        index: IndexVar,
        /// Block size.
        block: usize,
    },
}

/// A declared loop variable.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopVarInfo {
    /// Display name (`a`, `a_t`, `a_i`, …).
    pub name: String,
    /// Range.
    pub range: VarRange,
}

impl LoopVarInfo {
    /// Numeric extent under the current index-space extents.
    pub fn extent(&self, space: &IndexSpace) -> usize {
        match self.range {
            VarRange::Full(v) => space.extent(v),
            VarRange::Tile { index, block } => space.extent(index).div_ceil(block),
            VarRange::Intra { block, .. } => block,
        }
    }

    /// The source index this variable ranges over.
    pub fn source_index(&self) -> IndexVar {
        match self.range {
            VarRange::Full(v)
            | VarRange::Tile { index: v, .. }
            | VarRange::Intra { index: v, .. } => v,
        }
    }
}

/// A subscript expression of an array reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sub {
    /// The value of one loop variable.
    Var(LoopVarId),
    /// `tile·block + intra` — reconstructs an original index from its tiled
    /// pair (used to subscript full-size input arrays inside tiled code).
    Tiled {
        /// Tile-counter variable.
        tile: LoopVarId,
        /// Intra-tile variable.
        intra: LoopVarId,
        /// Block size (must equal the pair's declared block).
        block: usize,
    },
}

/// What an array is, for reporting and for binding at execution time.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayKind {
    /// A program input, bound to a tensor declaration.
    Input(TensorId),
    /// A temporary produced and consumed inside the program.
    Intermediate,
    /// The program result.
    Output,
    /// The scalar constant 1 (multiplicative identity; rank 0, no storage
    /// of interest).
    One,
}

/// A declared array.  After fusion some dimensions of an intermediate are
/// eliminated; `dims` lists the *remaining* dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayInfo {
    /// Display name.
    pub name: String,
    /// Extent of each remaining dimension, as a loop-variable range (so a
    /// tile-local buffer dimension has extent `block`).
    pub dims: Vec<VarRange>,
    /// Role.
    pub kind: ArrayKind,
}

impl ArrayInfo {
    /// Number of elements under the current extents.
    pub fn elements(&self, space: &IndexSpace) -> u128 {
        self.dims.iter().fold(1u128, |acc, d| {
            let e = match *d {
                VarRange::Full(v) => space.extent(v),
                VarRange::Tile { index, block } => space.extent(index).div_ceil(block),
                VarRange::Intra { block, .. } => block,
            };
            acc.saturating_mul(e as u128)
        })
    }
}

/// A declared primitive function (the paper's `f1`, `f2`).
#[derive(Debug, Clone, PartialEq)]
pub struct FuncInfo {
    /// Name.
    pub name: String,
    /// Arithmetic cost per evaluation (`C_i`).
    pub cost_per_eval: u64,
}

/// An array reference `array[subs…]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ARef {
    /// Referenced array.
    pub array: ArrayId,
    /// One subscript per remaining dimension.
    pub subs: Vec<Sub>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `for var { body }`
    Loop {
        /// Loop variable.
        var: LoopVarId,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// Zero-fill an array (or the portion addressed by its remaining dims).
    Init {
        /// Target array.
        array: ArrayId,
    },
    /// `lhs += coeff · Π rhs` — one multiply-accumulate per enclosing
    /// iteration.
    Accum {
        /// Target reference.
        lhs: ARef,
        /// Multiplied operands.
        rhs: Vec<ARef>,
        /// Scalar coefficient.
        coeff: f64,
    },
    /// `lhs = f(args…)` — one function evaluation per enclosing iteration.
    Eval {
        /// Target reference.
        lhs: ARef,
        /// Evaluated function.
        func: FuncId,
        /// Argument subscripts (original-index values).
        args: Vec<Sub>,
    },
}

/// A complete loop program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoopProgram {
    /// Loop variables.
    pub vars: Vec<LoopVarInfo>,
    /// Arrays.
    pub arrays: Vec<ArrayInfo>,
    /// Primitive functions.
    pub funcs: Vec<FuncInfo>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl LoopProgram {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a loop variable.
    pub fn add_var(&mut self, name: &str, range: VarRange) -> LoopVarId {
        let id = LoopVarId(self.vars.len() as u32);
        self.vars.push(LoopVarInfo {
            name: name.to_string(),
            range,
        });
        id
    }

    /// Declare an array.
    pub fn add_array(&mut self, name: &str, dims: Vec<VarRange>, kind: ArrayKind) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayInfo {
            name: name.to_string(),
            dims,
            kind,
        });
        id
    }

    /// Declare a primitive function.
    pub fn add_func(&mut self, name: &str, cost_per_eval: u64) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(FuncInfo {
            name: name.to_string(),
            cost_per_eval,
        });
        id
    }

    /// Variable info.
    pub fn var(&self, id: LoopVarId) -> &LoopVarInfo {
        &self.vars[id.0 as usize]
    }

    /// Array info.
    pub fn array(&self, id: ArrayId) -> &ArrayInfo {
        &self.arrays[id.0 as usize]
    }

    /// Function info.
    pub fn func(&self, id: FuncId) -> &FuncInfo {
        &self.funcs[id.0 as usize]
    }

    /// Validate structural well-formedness:
    /// * every referenced id exists;
    /// * subscript arity matches array rank;
    /// * every subscript variable is bound by an enclosing loop;
    /// * no variable is bound twice on a path;
    /// * `Tiled` subscripts pair a `Tile` and an `Intra` var of the same
    ///   source index and block.
    pub fn validate(&self) -> Result<(), String> {
        fn check_sub(p: &LoopProgram, s: &Sub, bound: &[bool]) -> Result<(), String> {
            match *s {
                Sub::Var(v) => {
                    if v.0 as usize >= p.vars.len() {
                        return Err("unknown loop variable".into());
                    }
                    if !bound[v.0 as usize] {
                        return Err(format!(
                            "loop variable `{}` used outside its loop",
                            p.var(v).name
                        ));
                    }
                }
                Sub::Tiled { tile, intra, block } => {
                    for v in [tile, intra] {
                        if v.0 as usize >= p.vars.len() {
                            return Err("unknown loop variable".into());
                        }
                        if !bound[v.0 as usize] {
                            return Err(format!(
                                "loop variable `{}` used outside its loop",
                                p.var(v).name
                            ));
                        }
                    }
                    match (p.var(tile).range, p.var(intra).range) {
                        (
                            VarRange::Tile {
                                index: i1,
                                block: b1,
                            },
                            VarRange::Intra {
                                index: i2,
                                block: b2,
                            },
                        ) if i1 == i2 && b1 == b2 && b1 == block => {}
                        _ => return Err("malformed tiled subscript pair".into()),
                    }
                }
            }
            Ok(())
        }

        fn check_ref(p: &LoopProgram, r: &ARef, bound: &[bool]) -> Result<(), String> {
            if r.array.0 as usize >= p.arrays.len() {
                return Err("unknown array".into());
            }
            let rank = p.array(r.array).dims.len();
            if r.subs.len() != rank {
                return Err(format!(
                    "array `{}` has rank {rank}, referenced with {} subscripts",
                    p.array(r.array).name,
                    r.subs.len()
                ));
            }
            for s in &r.subs {
                check_sub(p, s, bound)?;
            }
            Ok(())
        }

        fn walk(p: &LoopProgram, stmts: &[Stmt], bound: &mut Vec<bool>) -> Result<(), String> {
            for s in stmts {
                match s {
                    Stmt::Loop { var, body } => {
                        if var.0 as usize >= p.vars.len() {
                            return Err("unknown loop variable".into());
                        }
                        if bound[var.0 as usize] {
                            return Err(format!(
                                "loop variable `{}` bound twice on a path",
                                p.var(*var).name
                            ));
                        }
                        bound[var.0 as usize] = true;
                        walk(p, body, bound)?;
                        bound[var.0 as usize] = false;
                    }
                    Stmt::Init { array } => {
                        if array.0 as usize >= p.arrays.len() {
                            return Err("unknown array".into());
                        }
                    }
                    Stmt::Accum { lhs, rhs, .. } => {
                        check_ref(p, lhs, bound)?;
                        for r in rhs {
                            check_ref(p, r, bound)?;
                        }
                    }
                    Stmt::Eval { lhs, func, args } => {
                        check_ref(p, lhs, bound)?;
                        if func.0 as usize >= p.funcs.len() {
                            return Err("unknown function".into());
                        }
                        for a in args {
                            check_sub(p, a, bound)?;
                        }
                    }
                }
            }
            Ok(())
        }

        let mut bound = vec![false; self.vars.len()];
        walk(self, &self.body, &mut bound)
    }
}
