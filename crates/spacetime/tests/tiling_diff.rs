//! Differential tests for the space-time trade-off tiling search:
//! every configuration `spacetime_optimize` picks under a sweep of
//! memory limits — on randomized small extents — must execute to the
//! same value as the untiled oracle (the dense tree executor), and its
//! analytic memory/ops must be honest (limit respected, never better
//! than the recomputation-free baseline).

use std::collections::HashMap;
use tce_ir::rng::Rng;
use tce_ir::{IndexSet, IndexSpace, OpTree, TensorDecl, TensorTable};
use tce_spacetime::{spacetime_optimize, spacetime_program};
use tce_tensor::{IntegralFn, Tensor};

/// A3A-like tree at the given extents: `X = Σ T·T`, `Y = Σ f1·f2`,
/// `E = Σ X·Y`.
fn a3a(v: usize, o: usize, ci: u64) -> (IndexSpace, TensorTable, OpTree) {
    let mut space = IndexSpace::new();
    let rv = space.add_range("V", v);
    let ro = space.add_range("O", o);
    let (a, c, e, f, b) = (
        space.add_var("a", rv),
        space.add_var("c", rv),
        space.add_var("e", rv),
        space.add_var("f", rv),
        space.add_var("b", rv),
    );
    let (i, j, k) = (
        space.add_var("i", ro),
        space.add_var("j", ro),
        space.add_var("k", ro),
    );
    let mut tensors = TensorTable::new();
    let t_amp = tensors.add(TensorDecl::dense("T", vec![ro, ro, rv, rv]));
    let mut tree = OpTree::new();
    let l1 = tree.leaf_input(t_amp, vec![i, j, a, e]);
    let l2 = tree.leaf_input(t_amp, vec![i, j, c, f]);
    let x = tree.contract(l1, l2, IndexSet::from_vars([a, e, c, f]));
    let t1 = tree.leaf_func("f1", vec![c, e, b, k], ci);
    let t2 = tree.leaf_func("f2", vec![a, f, b, k], ci);
    let y = tree.contract(t1, t2, IndexSet::from_vars([c, e, a, f]));
    tree.contract(x, y, IndexSet::EMPTY);
    (space, tensors, tree)
}

/// Debug builds run a reduced sweep (the tiling search under unoptimized
/// code dominates the whole workspace's debug test time); release keeps
/// the full 8-seed × 6-limit sweep.
const SEEDS: u64 = if cfg!(debug_assertions) { 3 } else { 8 };
const LIMITS: &[u128] = if cfg!(debug_assertions) {
    &[2, 8, 4096]
} else {
    &[2, 4, 8, 16, 64, 4096]
};

#[test]
fn optimized_configs_match_untiled_oracle_on_random_extents() {
    for seed in 0..SEEDS {
        let mut rng = Rng::new(seed);
        let v = rng.usize_in(2..5);
        let o = rng.usize_in(2..4);
        let ci = rng.u64_in(5..60);
        let (space, tensors, tree) = a3a(v, o, ci);

        let amps = Tensor::random(&[o, o, v, v], seed ^ 0x7);
        let mut funcs = HashMap::new();
        funcs.insert("f1".to_string(), IntegralFn::new(ci, 0xF1));
        funcs.insert("f2".to_string(), IntegralFn::new(ci, 0xF2));
        let mut inputs = HashMap::new();
        inputs.insert(tensors.by_name("T").unwrap(), &amps);
        // Untiled oracle: dense tree execution, no fusion, no tiling.
        let expect = tce_exec::execute_tree(&tree, &space, &inputs, &funcs, 1)
            .unwrap()
            .get(&[]);

        // Recomputation-free op baseline (fully materialized).
        let baseline_ops = tree.total_ops(&space);

        let mut found_feasible = 0usize;
        for &limit in LIMITS {
            let Some((cfg, tiling)) = spacetime_optimize(&tree, &space, limit).unwrap() else {
                continue;
            };
            found_feasible += 1;
            assert!(
                tiling.memory <= limit,
                "seed {seed} limit {limit}: modeled memory {} over limit",
                tiling.memory
            );
            assert!(
                tiling.ops >= baseline_ops,
                "seed {seed} limit {limit}: {} ops beat the \
                 recomputation-free baseline {baseline_ops}",
                tiling.ops
            );
            let built = spacetime_program(&tree, &space, &tensors, &cfg, "E").unwrap();
            let mut interp =
                tce_exec::Interpreter::new(&built.program, &space, &inputs, &funcs).unwrap();
            interp.run(&mut tce_exec::NoSink);
            let got = interp.output().get(&[]);
            assert!(
                (got - expect).abs() <= 1e-9 * expect.abs().max(1.0),
                "seed {seed} limit {limit}: {got} vs {expect}"
            );
        }
        assert!(
            found_feasible >= 2,
            "seed {seed}: expected several feasible limits"
        );
    }
}

#[test]
fn tighter_limits_never_cost_fewer_ops() {
    let (space, _tensors, tree) = a3a(3, 2, 25);
    let mut last_ops = u128::MAX;
    // Sweeping the limit upward, the optimizer's op count is
    // non-increasing: more memory can only help.
    for limit in [2u128, 4, 8, 16, 64, 4096] {
        if let Some((_, tiling)) = spacetime_optimize(&tree, &space, limit).unwrap() {
            assert!(
                tiling.ops <= last_ops,
                "limit {limit}: ops {} after {last_ops}",
                tiling.ops
            );
            last_ops = tiling.ops;
        }
    }
    assert_ne!(last_ops, u128::MAX, "no feasible limit at all");
}
