//! E7 — paper Fig. 7: redundant computation enables full fusion.
//!
//! Claims reproduced:
//! * adding redundant vertices `(a,f)` at the T1 producer and `(c,e)` at
//!   the T2 producer makes the complete fusion chains realizable without
//!   partial overlap (Fig. 7(a));
//! * "the redundant computation need only be added to one of T1 or T2 to
//!   achieve complete fusion" — removing T2's additions still permits a
//!   fully fused X/Y/E with T1 scalar (T2 keeps a `(b,k)` block);
//! * the space-time DP discovers both configurations on its pareto
//!   frontier with the expected memory/ops values.

use tce_bench::tables::fmt_u;
use tce_core::fusion::{FusionConfig, FusionGraph};
use tce_core::scenarios::A3AScenario;
use tce_core::spacetime::spacetime_dp;

fn main() {
    println!("E7: Fig. 7 — redundant computation and full fusion\n");
    let sc = A3AScenario::new(4, 2, 100);
    let tree = &sc.tree;
    let names = |n: tce_core::ir::NodeId| -> String {
        if n == sc.x_node {
            "X".into()
        } else if n == sc.t1_node {
            "T1".into()
        } else if n == sc.t2_node {
            "T2".into()
        } else if n == sc.y_node {
            "Y".into()
        } else if n == tree.root {
            "E".into()
        } else {
            format!("leaf{}", n.0)
        }
    };

    // Fig 7(a): redundant vertices at both producers.
    let mut g = FusionGraph::from_tree(tree);
    g.add_redundant_vertices(tree, sc.t1_node, sc.space.parse_set("a,f").unwrap());
    g.add_redundant_vertices(tree, sc.t2_node, sc.space.parse_set("c,e").unwrap());
    println!("fusion graph with redundant vertices (bracketed):");
    println!("{}", g.render(tree, &sc.space, &names));

    let mut full = FusionConfig::unfused(tree);
    full.set(sc.x_node, sc.space.parse_set("a,e,c,f").unwrap());
    full.set(sc.y_node, sc.space.parse_set("c,e,a,f").unwrap());
    full.set(sc.t1_node, sc.space.parse_set("c,e,b,k,a,f").unwrap());
    full.set(sc.t2_node, sc.space.parse_set("a,f,b,k,c,e").unwrap());
    let plain = FusionGraph::from_tree(tree);
    assert!(plain.supports(tree, &full).is_err(), "needs redundancy");
    g.supports(tree, &full).unwrap();
    println!("complete fusion (all temporaries scalar): REALIZABLE with redundancy\n");

    // One-sided redundancy (remove T2's additions).
    let mut g1 = FusionGraph::from_tree(tree);
    g1.add_redundant_vertices(tree, sc.t1_node, sc.space.parse_set("a,f").unwrap());
    let mut one_sided = FusionConfig::unfused(tree);
    one_sided.set(sc.x_node, sc.space.parse_set("a,e,c,f").unwrap());
    one_sided.set(sc.y_node, sc.space.parse_set("c,e,a,f").unwrap());
    one_sided.set(sc.t1_node, sc.space.parse_set("c,e,b,k,a,f").unwrap());
    one_sided.set(sc.t2_node, sc.space.parse_set("a,f").unwrap());
    g1.supports(tree, &one_sided).unwrap();
    println!("one-sided redundancy (T1 only): complete fusion of X/Y/E still");
    println!("REALIZABLE; T2 becomes a (b,k) block computed once per (a,f)\n");

    // The space-time DP finds both regimes on its frontier.
    let front = spacetime_dp(tree, &sc.space, usize::MAX).unwrap();
    println!("space-time frontier at V = 4, O = 2, C_i = 100:");
    for p in front.points() {
        let red = p.tag.recomputation_indices();
        println!(
            "  mem {:>6}  ops {:>12}  recomputed indices: {}",
            fmt_u(p.mem),
            fmt_u(p.ops),
            if red.is_empty() {
                "(none)".to_string()
            } else {
                sc.space.set_to_string(red)
            }
        );
    }
    // The all-scalar point must exist.
    let min = front.min_mem().unwrap();
    assert_eq!(min.mem, 4);
    // A one-sided point (memory = 3 scalars + V·O block = 3 + 8) should
    // dominate or appear between the extremes.
    let vo = (sc.v() * sc.o()) as u128;
    let has_partial = front.points().iter().any(|p| p.mem <= 3 + vo && p.mem > 4);
    println!(
        "\nfrontier contains a one-sided-redundancy regime (mem ≈ 3 + V·O = {}): {}",
        3 + vo,
        has_partial
    );
    println!("E7 OK");
}
