//! Automatic minimization of failing programs.
//!
//! Greedy fixed-point shrinking: each round tries a deterministic sequence
//! of structural mutations (drop a statement, drop a term, drop a factor,
//! shrink a range extent, merge two same-range index variables) and keeps
//! the first mutation under which [`check_program`] still fails with the
//! *same* [`CheckKind`].  Rounds repeat until no mutation applies or the
//! attempt budget is exhausted.  The result is the small, self-contained
//! repro a human actually wants to read.

use tce_ir::{Factor, IndexSet, IndexVar, Program};

use crate::checks::{check_program_caught, CheckConfig, CheckKind};

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized program (still failing with the original kind).
    pub program: Program,
    /// Accepted mutations.
    pub steps: usize,
    /// Candidate programs evaluated (accepted + rejected).
    pub attempts: usize,
}

/// Largest operand count (factors per term) anywhere in the program — the
/// "N-operand repro" size.
pub fn max_operands(program: &Program) -> usize {
    program
        .stmts
        .iter()
        .flat_map(|s| s.terms.iter())
        .map(|t| t.factors.len())
        .max()
        .unwrap_or(0)
}

/// Minimize `program`, which must currently fail with `kind` under `ck`.
pub fn shrink(
    program: &Program,
    kind: CheckKind,
    ck: &CheckConfig,
    max_attempts: usize,
) -> ShrinkResult {
    let mut current = program.clone();
    let mut steps = 0;
    let mut attempts = 0;
    'rounds: loop {
        for candidate in mutations(&current) {
            if attempts >= max_attempts {
                break 'rounds;
            }
            if candidate.validate().is_err() {
                continue;
            }
            attempts += 1;
            if matches!(check_program_caught(&candidate, ck), Err(f) if f.kind == kind) {
                current = candidate;
                steps += 1;
                continue 'rounds;
            }
        }
        break;
    }
    ShrinkResult {
        program: current,
        steps,
        attempts,
    }
}

/// Deterministic candidate stream for one shrink round, ordered from the
/// most aggressive cut (whole statements) to the gentlest (index merges).
fn mutations(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();

    // Drop one statement (keep at least one).  Later readers of a dropped
    // producer degrade into external inputs, which the harness binds.
    if p.stmts.len() > 1 {
        for si in (0..p.stmts.len()).rev() {
            let mut q = p.clone();
            q.stmts.remove(si);
            out.push(q);
        }
    }

    // Drop one term (keep at least one per statement).
    for si in 0..p.stmts.len() {
        if p.stmts[si].terms.len() > 1 {
            for ti in (0..p.stmts[si].terms.len()).rev() {
                let mut q = p.clone();
                q.stmts[si].terms.remove(ti);
                refresh_sum(&mut q, si);
                out.push(q);
            }
        }
    }

    // Drop one factor (keep at least one per term).
    for si in 0..p.stmts.len() {
        for ti in 0..p.stmts[si].terms.len() {
            if p.stmts[si].terms[ti].factors.len() > 1 {
                for fi in (0..p.stmts[si].terms[ti].factors.len()).rev() {
                    let mut q = p.clone();
                    q.stmts[si].terms[ti].factors.remove(fi);
                    refresh_sum(&mut q, si);
                    out.push(q);
                }
            }
        }
    }

    // Shrink a range extent toward 2 (straight to 2, then decrement).
    for r in 0..p.space.num_ranges() {
        let rid = tce_ir::RangeId(r as u16);
        let e = p.space.range_extent(rid);
        if e > 2 {
            let mut q = p.clone();
            q.space.set_extent(rid, 2);
            out.push(q);
            let mut q = p.clone();
            q.space.set_extent(rid, e - 1);
            out.push(q);
        }
    }

    // Merge index variable v into an earlier same-range variable w
    // (rewrite every use of v to w), skipping merges that would create a
    // repeated index inside one reference.
    let vars: Vec<IndexVar> = p.space.vars().collect();
    for (i, &v) in vars.iter().enumerate() {
        for &w in &vars[..i] {
            if p.space.range_of(v) != p.space.range_of(w) {
                continue;
            }
            if let Some(q) = merge_var(p, v, w) {
                out.push(q);
            }
        }
    }

    out
}

/// Recompute a statement's summation set after structural edits:
/// everything its terms use that is not on the LHS.
fn refresh_sum(p: &mut Program, si: usize) {
    let stmt = &mut p.stmts[si];
    let union = stmt
        .terms
        .iter()
        .fold(IndexSet::EMPTY, |s, t| s.union(t.index_set()));
    stmt.sum_indices = union.minus(stmt.lhs.index_set());
}

/// Rewrite every use of `v` to `w`; `None` when any reference would end up
/// with a repeated index.
fn merge_var(p: &Program, v: IndexVar, w: IndexVar) -> Option<Program> {
    let rewrite = |indices: &mut Vec<IndexVar>| -> bool {
        if indices.contains(&v) && indices.contains(&w) {
            return false;
        }
        for x in indices.iter_mut() {
            if *x == v {
                *x = w;
            }
        }
        true
    };
    let mut q = p.clone();
    let mut touched = false;
    for si in 0..q.stmts.len() {
        let stmt = &mut q.stmts[si];
        if stmt.lhs.indices.contains(&v) {
            if !rewrite(&mut stmt.lhs.indices) {
                return None;
            }
            touched = true;
        }
        for term in &mut stmt.terms {
            for factor in &mut term.factors {
                let idxs = match factor {
                    Factor::Tensor(r) => &mut r.indices,
                    Factor::Func(f) => &mut f.indices,
                };
                if idxs.contains(&v) {
                    if !rewrite(idxs) {
                        return None;
                    }
                    touched = true;
                }
            }
        }
    }
    if !touched {
        return None;
    }
    for si in 0..q.stmts.len() {
        refresh_sum(&mut q, si);
    }
    Some(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::{CheckKind, Failure};
    use crate::gen::{gen_program, GenConfig};
    use tce_ir::rng::Rng;

    #[test]
    fn mutations_keep_programs_valid_or_are_skipped() {
        for seed in 0..40u64 {
            let p = gen_program(&mut Rng::new(seed), &GenConfig::extended());
            for q in mutations(&p) {
                // Mutations may produce invalid programs (the shrinker
                // skips those); valid ones must keep the core invariants.
                if q.validate().is_ok() {
                    for stmt in &q.stmts {
                        assert!(stmt.sum_indices.is_disjoint(stmt.lhs.index_set()));
                    }
                }
            }
        }
    }

    #[test]
    fn merge_var_rejects_diagonals() {
        // A program where both vars appear in one reference: merging them
        // would create a repeated index, so the mutation must bail.
        let src = "
            range r0 = 3;
            index x0, x1 : r0;
            tensor t0(r0, r0); tensor t1(r0, r0);
            t1[x0,x1] = t0[x0,x1];
        ";
        let p = tce_lang::compile(src).unwrap();
        let v0 = p.space.var_by_name("x0").unwrap();
        let v1 = p.space.var_by_name("x1").unwrap();
        assert!(merge_var(&p, v1, v0).is_none());
    }

    #[test]
    fn shrink_is_a_noop_on_nonreproducing_kind() {
        // If no mutation reproduces the kind, the original comes back.
        let p = gen_program(&mut Rng::new(3), &GenConfig::default());
        let ck = CheckConfig::default();
        // NonFinite never fires on well-formed generated data.
        let r = shrink(&p, CheckKind::NonFinite, &ck, 50);
        assert_eq!(r.steps, 0);
        assert_eq!(format!("{:?}", r.program.stmts), format!("{:?}", p.stmts));
        let _ = Failure {
            kind: CheckKind::NonFinite,
            detail: String::new(),
        };
    }
}
