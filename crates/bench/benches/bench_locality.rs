//! Micro-benchmark: the §6 cost model, the doubling tile search, and
//! the measured effect of blocking on execution (supports experiment E10).

use std::collections::HashMap;
use tce_bench::harness::{black_box, BenchmarkId, Criterion};
use tce_bench::{criterion_group, criterion_main};
use tce_core::exec::{Interpreter, NoSink};
use tce_core::ir::{IndexSpace, TensorDecl, TensorTable};
use tce_core::locality::{access_cost, perfect_nests, search_nest_tiles};
use tce_core::loops::{ARef, ArrayKind, LoopProgram, Stmt, Sub, VarRange};
use tce_core::tensor::Tensor;

fn matmul(n: usize) -> (IndexSpace, TensorTable, LoopProgram) {
    let mut space = IndexSpace::new();
    let r = space.add_range("N", n);
    let i = space.add_var("i", r);
    let j = space.add_var("j", r);
    let k = space.add_var("k", r);
    let mut tensors = TensorTable::new();
    let ta = tensors.add(TensorDecl::dense("A", vec![r, r]));
    let tb = tensors.add(TensorDecl::dense("B", vec![r, r]));
    let mut p = LoopProgram::new();
    let vi = p.add_var("i", VarRange::Full(i));
    let vj = p.add_var("j", VarRange::Full(j));
    let vk = p.add_var("k", VarRange::Full(k));
    let a = p.add_array(
        "A",
        vec![VarRange::Full(i), VarRange::Full(k)],
        ArrayKind::Input(ta),
    );
    let b = p.add_array(
        "B",
        vec![VarRange::Full(k), VarRange::Full(j)],
        ArrayKind::Input(tb),
    );
    let cc = p.add_array(
        "C",
        vec![VarRange::Full(i), VarRange::Full(j)],
        ArrayKind::Output,
    );
    let stmt = Stmt::Accum {
        lhs: ARef {
            array: cc,
            subs: vec![Sub::Var(vi), Sub::Var(vj)],
        },
        rhs: vec![
            ARef {
                array: a,
                subs: vec![Sub::Var(vi), Sub::Var(vk)],
            },
            ARef {
                array: b,
                subs: vec![Sub::Var(vk), Sub::Var(vj)],
            },
        ],
        coeff: 1.0,
    };
    p.body
        .push(tce_core::loops::nest(vec![vi, vj, vk], vec![stmt]));
    (space, tensors, p)
}

fn bench(c: &mut Criterion) {
    let (space, tensors, p) = matmul(64);

    c.bench_function("access_cost_model", |b| {
        b.iter(|| access_cost(black_box(&p), &space, 4096))
    });
    let nests = perfect_nests(&p);
    c.bench_function("tile_search_matmul64", |b| {
        b.iter(|| search_nest_tiles(black_box(&p), &space, &nests[0], 4096))
    });

    // Execution cost with and without model-chosen blocking (interpreter
    // wall-clock; the blocked variant pays tiling arithmetic but improves
    // reuse at real-cache level too).
    let best = search_nest_tiles(&p, &space, &nests[0], 4096);
    let a = Tensor::random(&[64, 64], 1);
    let bt = Tensor::random(&[64, 64], 2);
    let mut inputs = HashMap::new();
    inputs.insert(tensors.by_name("A").unwrap(), &a);
    inputs.insert(tensors.by_name("B").unwrap(), &bt);
    let mut g = c.benchmark_group("matmul64_interp");
    g.sample_size(20);
    for (name, prog) in [("untiled", &p), ("blocked", &best.program)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), prog, |b, prog| {
            b.iter(|| {
                let mut interp = Interpreter::new(prog, &space, &inputs, &HashMap::new()).unwrap();
                interp.run(&mut NoSink);
                black_box(interp.stats.contraction_flops)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
