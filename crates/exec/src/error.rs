//! Typed execution errors.
//!
//! Every executor entry point (`execute_tree*`, the interpreter, the
//! fused-slice executor) reports missing bindings, shape mismatches and
//! malformed programs as [`ExecError`] values instead of panicking, so
//! the pipeline and the `tce` CLI can surface them as one-line
//! diagnostics with a nonzero exit status.

use std::fmt;

/// An execution failure (bad bindings or a malformed program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// No tensor was bound for a declared input.
    MissingInput {
        /// Name (or id) of the unbound input tensor.
        name: String,
    },
    /// A bound input tensor's shape disagrees with its declaration.
    InputShapeMismatch {
        /// Name (or id) of the input tensor.
        name: String,
        /// Shape required by the declaration.
        expect: Vec<usize>,
        /// Shape of the bound tensor.
        got: Vec<usize>,
    },
    /// No implementation was bound for a primitive function.
    MissingFunction {
        /// Name of the unbound function.
        name: String,
    },
    /// The loop program (or fusion configuration) is malformed.
    InvalidProgram {
        /// What failed to validate.
        reason: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingInput { name } => {
                write!(f, "no binding for input tensor `{name}`")
            }
            ExecError::InputShapeMismatch { name, expect, got } => write!(
                f,
                "input tensor `{name}` has shape {got:?}, expected {expect:?}"
            ),
            ExecError::MissingFunction { name } => {
                write!(f, "no binding for function `{name}`")
            }
            ExecError::InvalidProgram { reason } => {
                write!(f, "invalid program: {reason}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<tce_dist::DistError> for ExecError {
    fn from(e: tce_dist::DistError) -> Self {
        match e {
            tce_dist::DistError::MissingInput { tensor } => ExecError::MissingInput {
                name: format!("tensor id {}", tensor.0),
            },
            tce_dist::DistError::MissingFunction { name } => ExecError::MissingFunction { name },
            other => ExecError::InvalidProgram {
                reason: other.to_string(),
            },
        }
    }
}
