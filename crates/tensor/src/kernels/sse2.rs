//! 128-bit SSE2 kernels — the baseline vector tier every x86-64 CPU can
//! run.
//!
//! The GEMM micro-kernel uses a 4×4 register tile vectorized along M:
//! two `__m128d` loads cover a packed-A column, each packed-B element is
//! broadcast, and the eight accumulators plus operands stay within the
//! sixteen xmm registers.  No FMA: mul then add, which keeps SSE2
//! rounding close to (but not bit-identical with) the scalar oracle.

#![cfg(any(target_arch = "x86", target_arch = "x86_64"))]

#[cfg(target_arch = "x86")]
use std::arch::x86::*;
#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// 4×4 SSE2 micro-kernel: `acc[r*4 + c] = Σ_k ap[k*4+r]·bp[k*4+c]`.
///
/// # Safety
/// Caller must ensure the host supports SSE2 (always true on x86-64;
/// CPUID-checked by the dispatcher on x86).
#[target_feature(enable = "sse2")]
pub unsafe fn microkernel_4x4(ap: &[f64], bp: &[f64], kb: usize, acc: &mut [f64]) {
    const MR: usize = 4;
    const NR: usize = 4;
    debug_assert!(ap.len() >= kb * MR && bp.len() >= kb * NR && acc.len() >= MR * NR);
    // acc column c, rows [0..2) and [2..4).
    let mut c_lo = [_mm_setzero_pd(); NR];
    let mut c_hi = [_mm_setzero_pd(); NR];
    for kk in 0..kb {
        let a = ap.as_ptr().add(kk * MR);
        let a_lo = _mm_loadu_pd(a);
        let a_hi = _mm_loadu_pd(a.add(2));
        let b = bp.as_ptr().add(kk * NR);
        for c in 0..NR {
            let bv = _mm_set1_pd(*b.add(c));
            c_lo[c] = _mm_add_pd(c_lo[c], _mm_mul_pd(a_lo, bv));
            c_hi[c] = _mm_add_pd(c_hi[c], _mm_mul_pd(a_hi, bv));
        }
    }
    // Registers hold columns; the engine wants rows (`acc[r*NR + c]`).
    let mut col = [0.0f64; MR];
    for (c, (&lo, &hi)) in c_lo.iter().zip(&c_hi).enumerate() {
        _mm_storeu_pd(col.as_mut_ptr(), lo);
        _mm_storeu_pd(col.as_mut_ptr().add(2), hi);
        for r in 0..MR {
            acc[r * NR + c] = col[r];
        }
    }
}

/// Transpose-structured copy (`dst[d0+iu*drs+il] = src[s0+iu+il*scs]`)
/// with 2×2 in-register tiles via `unpacklo/hi_pd`.
///
/// # Safety
/// Caller must ensure SSE2 support; index bounds are the caller's
/// contract exactly as in the scalar version (all reads/writes are in
/// range for `src`/`dst`).
#[target_feature(enable = "sse2")]
#[allow(clippy::too_many_arguments)]
pub unsafe fn transpose_tile(
    src: &[f64],
    dst: &mut [f64],
    s0: usize,
    d0: usize,
    nu: usize,
    nl: usize,
    scs: usize,
    drs: usize,
) {
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let mut iu = 0;
    while iu + 2 <= nu {
        let mut il = 0;
        while il + 2 <= nl {
            // Two source columns of two consecutive iu values each.
            let r0 = _mm_loadu_pd(sp.add(s0 + iu + il * scs));
            let r1 = _mm_loadu_pd(sp.add(s0 + iu + (il + 1) * scs));
            // 2×2 transpose.
            let t0 = _mm_unpacklo_pd(r0, r1);
            let t1 = _mm_unpackhi_pd(r0, r1);
            _mm_storeu_pd(dp.add(d0 + iu * drs + il), t0);
            _mm_storeu_pd(dp.add(d0 + (iu + 1) * drs + il), t1);
            il += 2;
        }
        for il in il..nl {
            *dp.add(d0 + iu * drs + il) = *sp.add(s0 + iu + il * scs);
            *dp.add(d0 + (iu + 1) * drs + il) = *sp.add(s0 + iu + 1 + il * scs);
        }
        iu += 2;
    }
    if iu < nu {
        for il in 0..nl {
            *dp.add(d0 + iu * drs + il) = *sp.add(s0 + iu + il * scs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microkernel_matches_scalar_reference() {
        if !is_x86_feature_detected!("sse2") {
            return;
        }
        let kb = 7;
        let ap: Vec<f64> = (0..kb * 4).map(|x| (x as f64 * 0.37).sin()).collect();
        let bp: Vec<f64> = (0..kb * 4).map(|x| (x as f64 * 0.73).cos()).collect();
        let mut acc = [f64::NAN; 16];
        unsafe { microkernel_4x4(&ap, &bp, kb, &mut acc) };
        for r in 0..4 {
            for c in 0..4 {
                let mut want = 0.0;
                for kk in 0..kb {
                    want += ap[kk * 4 + r] * bp[kk * 4 + c];
                }
                assert!((acc[r * 4 + c] - want).abs() < 1e-12, "r={r} c={c}");
            }
        }
    }

    #[test]
    fn transpose_matches_scalar_on_odd_tile() {
        if !is_x86_feature_detected!("sse2") {
            return;
        }
        let (nu, nl, scs, drs) = (5, 7, 11, 13);
        let src: Vec<f64> = (0..128).map(|x| x as f64).collect();
        let mut dst = vec![0.0f64; 128];
        let mut want = vec![0.0f64; 128];
        unsafe { transpose_tile(&src, &mut dst, 3, 2, nu, nl, scs, drs) };
        super::super::scalar::transpose_tile(&src, &mut want, 3, 2, nu, nl, scs, drs);
        assert_eq!(dst, want);
    }
}
