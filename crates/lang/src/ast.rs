//! Raw (name-based) abstract syntax tree, before semantic analysis.

/// A complete parsed source file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SourceFile {
    /// Declarations and statements in source order.
    pub items: Vec<Item>,
}

/// One top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `range V = 3000;`
    Range(RangeDecl),
    /// `index a, b : V;`
    Index(IndexDecl),
    /// `tensor A(V, O) symmetric(0,1) sparse;`
    Tensor(TensorDeclAst),
    /// `function f1(V, O) cost 1000;`
    Function(FuncDecl),
    /// An assignment statement.
    Stmt(StmtAst),
}

/// `range NAME = EXTENT;`
#[derive(Debug, Clone, PartialEq)]
pub struct RangeDecl {
    /// Range name.
    pub name: String,
    /// Extent.
    pub extent: u64,
    /// Source line.
    pub line: u32,
}

/// `index a, b, c : V;`
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDecl {
    /// Declared variable names.
    pub names: Vec<String>,
    /// Range name.
    pub range: String,
    /// Source line.
    pub line: u32,
}

/// A symmetry annotation on a tensor declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetryAst {
    /// Dimension positions.
    pub positions: Vec<usize>,
    /// Whether antisymmetric.
    pub antisymmetric: bool,
}

/// `tensor A(V, O, V, O) [symmetric(p,..)] [antisymmetric(p,..)] [sparse];`
#[derive(Debug, Clone, PartialEq)]
pub struct TensorDeclAst {
    /// Tensor name.
    pub name: String,
    /// Range name of each dimension.
    pub dims: Vec<String>,
    /// Symmetry annotations.
    pub symmetry: Vec<SymmetryAst>,
    /// Sparsity flag.
    pub sparse: bool,
    /// Source line.
    pub line: u32,
}

/// `function f1(V, O) cost 1000;`
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Range name of each argument.
    pub args: Vec<String>,
    /// Per-evaluation arithmetic cost (`C_i`).
    pub cost: u64,
    /// Source line.
    pub line: u32,
}

/// `LHS[indices] (=|+=) [sum[..]] term (+ term)*;`
#[derive(Debug, Clone, PartialEq)]
pub struct StmtAst {
    /// Target tensor name.
    pub lhs: String,
    /// Target index names (empty for scalars: `E[]` or bare `E`).
    pub lhs_indices: Vec<String>,
    /// `true` for `+=`.
    pub accumulate: bool,
    /// Summation index names.
    pub sum_indices: Vec<String>,
    /// The summed product terms.
    pub terms: Vec<TermAst>,
    /// Source line.
    pub line: u32,
}

/// One product term: `coeff * F1 * F2 * …`.
#[derive(Debug, Clone, PartialEq)]
pub struct TermAst {
    /// Scalar coefficient (sign folded in).
    pub coeff: f64,
    /// Factors.
    pub factors: Vec<FactorAst>,
}

/// A factor: tensor reference `A[a,b]` or function call `f1(a,b)`.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorAst {
    /// `NAME[idx,…]`
    Tensor {
        /// Tensor name.
        name: String,
        /// Index names.
        indices: Vec<String>,
    },
    /// `NAME(idx,…)`
    Func {
        /// Function name.
        name: String,
        /// Index names.
        indices: Vec<String>,
    },
}
