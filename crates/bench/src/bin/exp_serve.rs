//! exp_serve — load generation against the compile-and-execute service.
//!
//! Starts an in-process `tce-serve` server backed by the real pipeline
//! handler, measures (a) cold vs. warm-cache throughput on repeat
//! expressions — a warm repeat is answered from the deterministic
//! response memo without re-synthesizing or re-executing, so it must be
//! much faster — and (b) a worker-count sweep under 8 concurrent
//! clients reporting throughput and p50/p99 request latency.  Clients
//! hold persistent connections, as a real caller batching requests
//! would.  Writes the measurements to `BENCH_serve.json`.
//!
//! ```text
//! exp_serve [--out BENCH_serve.json] [--clients C] [--repeats R]
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tce_bench::tables::Table;
use tce_core::serve::PipelineHandler;
use tce_serve::client;
use tce_serve::protocol::format_run;
use tce_serve::{ServeConfig, Server, ServerHandle};

/// Distinct expressions: every one is a separate synthesis-cache entry.
fn programs() -> Vec<(String, String)> {
    let mut out = vec![(
        "ccsd_section2".to_string(),
        tce_core::scenarios::section2_source(6),
    )];
    for n in [48usize, 56, 64] {
        out.push((
            format!("chain_n{n}"),
            format!(
                "range N = {n};
                 index i, j, k, l : N;
                 tensor A(N, N); tensor B(N, N); tensor C(N, N); tensor OUT(N, N);
                 OUT[i,l] = sum[j,k] A[i,j] * B[j,k] * C[k,l];"
            ),
        ));
    }
    out
}

fn start(workers: usize) -> (ServerHandle, String) {
    let cfg = ServeConfig {
        workers,
        queue_cap: 256,
        timeout: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    let server = Server::bind(&cfg, Arc::new(PipelineHandler::default())).expect("bind");
    let addr = server.local_addr().to_string();
    (server.spawn(), addr)
}

fn run_request(conn: &mut client::Client, program: &str) -> Duration {
    let line = format_run(program, &[("seed", "7")]);
    let start = Instant::now();
    let reply = conn.round_trip(&line).expect("request");
    assert!(reply.starts_with("ok "), "request failed: {reply}");
    start.elapsed()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let mut out_path = "BENCH_serve.json".to_string();
    let mut clients = 8usize;
    let mut repeats = 10usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--clients" => {
                clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients needs a positive integer");
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats needs a positive integer");
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    let progs = programs();
    println!("exp_serve: load generation against tce-serve\n");

    // ---- Cold vs. warm: sequential single client, fresh server --------
    let (handle, addr) = start(4);
    let mut conn = client::Client::connect(&addr).expect("connect");
    let cold_start = Instant::now();
    for (_, src) in &progs {
        run_request(&mut conn, src);
    }
    let cold_wall = cold_start.elapsed().as_secs_f64();
    let warm_passes = 3usize;
    let warm_start = Instant::now();
    for _ in 0..warm_passes {
        for (_, src) in &progs {
            run_request(&mut conn, src);
        }
    }
    let warm_wall = warm_start.elapsed().as_secs_f64();
    let cold_rps = progs.len() as f64 / cold_wall;
    let warm_rps = (warm_passes * progs.len()) as f64 / warm_wall;
    let speedup = warm_rps / cold_rps;
    let stats_line = conn.round_trip("stats").expect("stats");
    drop(conn);
    handle.shutdown();
    handle.join();
    println!(
        "cold: {} reqs in {:.3}s ({:.1} req/s); warm: {} reqs in {:.3}s ({:.1} req/s); warm/cold = {:.1}x",
        progs.len(),
        cold_wall,
        cold_rps,
        warm_passes * progs.len(),
        warm_wall,
        warm_rps,
        speedup
    );
    println!("server stats: {stats_line}\n");
    assert!(
        speedup >= 3.0,
        "warm-cache throughput must be at least 3x cold, got {speedup:.2}x"
    );

    // ---- Worker sweep under concurrent clients ------------------------
    let mut table = Table::new(&[
        "workers", "clients", "reqs", "wall (s)", "req/s", "p50 (ms)", "p99 (ms)",
    ]);
    let mut sweep_json = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let (handle, addr) = start(workers);
        // Prime the caches so the sweep measures steady-state serving.
        {
            let mut prime = client::Client::connect(&addr).expect("connect");
            for (_, src) in &progs {
                run_request(&mut prime, src);
            }
        }
        let wall_start = Instant::now();
        let latencies: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let (addr, progs) = (addr.clone(), &progs);
                    s.spawn(move || {
                        let mut conn = client::Client::connect(&addr).expect("connect");
                        let mut lat = Vec::with_capacity(repeats);
                        for r in 0..repeats {
                            let (_, src) = &progs[(c + r) % progs.len()];
                            lat.push(run_request(&mut conn, src).as_secs_f64() * 1e3);
                        }
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let wall = wall_start.elapsed().as_secs_f64();
        handle.shutdown();
        handle.join();
        let mut sorted = latencies.clone();
        sorted.sort_by(f64::total_cmp);
        let reqs = latencies.len();
        let rps = reqs as f64 / wall;
        let p50 = percentile(&sorted, 0.50);
        let p99 = percentile(&sorted, 0.99);
        table.row(&[
            workers.to_string(),
            clients.to_string(),
            reqs.to_string(),
            format!("{wall:.3}"),
            format!("{rps:.1}"),
            format!("{p50:.2}"),
            format!("{p99:.2}"),
        ]);
        sweep_json.push(format!(
            "    {{ \"workers\": {workers}, \"clients\": {clients}, \"requests\": {reqs}, \
             \"wall_s\": {wall:.6}, \"throughput_rps\": {rps:.3}, \"p50_ms\": {p50:.3}, \
             \"p99_ms\": {p99:.3} }}"
        ));
    }
    println!("{}", table.render());

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"serve\",");
    let _ = writeln!(json, "  \"programs\": {},", progs.len());
    let _ = writeln!(
        json,
        "  \"cold\": {{ \"requests\": {}, \"wall_s\": {cold_wall:.6}, \"throughput_rps\": {cold_rps:.3} }},",
        progs.len()
    );
    let _ = writeln!(
        json,
        "  \"warm\": {{ \"requests\": {}, \"wall_s\": {warm_wall:.6}, \"throughput_rps\": {warm_rps:.3} }},",
        warm_passes * progs.len()
    );
    let _ = writeln!(json, "  \"warm_over_cold\": {speedup:.3},");
    let _ = writeln!(json, "  \"sweep\": [");
    let _ = writeln!(json, "{}", sweep_json.join(",\n"));
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
