//! Criterion benchmark: the execution substrate — naive vs blocked-GEMM
//! vs parallel contraction kernels, and the loop-program interpreter vs
//! the array-at-a-time tree executor.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use tce_core::exec::{parallel_contract, Interpreter, NoSink};
use tce_core::ir::{IndexSpace, IndexVar};
use tce_core::scenarios::section2_source;
use tce_core::tensor::{contract_gemm, contract_naive, BinaryContraction, Tensor};
use tce_core::{synthesize, SynthesisConfig};

fn setup(n: usize) -> (IndexSpace, [IndexVar; 3]) {
    let mut sp = IndexSpace::new();
    let r = sp.add_range("N", n);
    let i = sp.add_var("i", r);
    let j = sp.add_var("j", r);
    let k = sp.add_var("k", r);
    (sp, [i, j, k])
}

fn bench(c: &mut Criterion) {
    let n = 96usize;
    let (sp, [i, j, k]) = setup(n);
    let spec = BinaryContraction {
        a: vec![i, k],
        b: vec![k, j],
        out: vec![i, j],
    };
    let a = Tensor::random(&[n, n], 1);
    let b = Tensor::random(&[n, n], 2);

    let mut g = c.benchmark_group("contract_kernels_96");
    g.sample_size(20);
    g.bench_function("naive", |bch| {
        bch.iter(|| contract_naive(black_box(&spec), &sp, &a, &b))
    });
    g.bench_function("gemm_blocked", |bch| {
        bch.iter(|| contract_gemm(black_box(&spec), &sp, &a, &b))
    });
    for threads in [2usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |bch, &t| bch.iter(|| parallel_contract(black_box(&spec), &sp, &a, &b, t)),
        );
    }
    g.finish();

    // Interpreter vs tree executor on the synthesized §2 program.
    let syn = synthesize(&section2_source(6), &SynthesisConfig::default()).unwrap();
    let plan = &syn.plans[0];
    let space = &syn.program.space;
    let shape = [6usize; 4];
    let data: Vec<Tensor> = (0..4).map(|s| Tensor::random(&shape, s as u64)).collect();
    let mut inputs = HashMap::new();
    for (q, nm) in ["A", "B", "C", "D"].iter().enumerate() {
        inputs.insert(syn.program.tensors.by_name(nm).unwrap(), &data[q]);
    }
    let mut g2 = c.benchmark_group("section2_execution");
    g2.sample_size(20);
    g2.bench_function("interpreter_fused", |bch| {
        bch.iter(|| {
            let mut it = Interpreter::new(&plan.built.program, space, &inputs, &HashMap::new());
            it.run(&mut NoSink);
            black_box(it.stats.contraction_flops)
        })
    });
    g2.bench_function("tree_executor_gemm", |bch| {
        bch.iter(|| {
            black_box(tce_core::exec::execute_tree(
                &plan.tree,
                space,
                &inputs,
                &HashMap::new(),
                1,
            ))
        })
    });
    g2.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
