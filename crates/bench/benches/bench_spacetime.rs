//! Micro-benchmark: the space-time pareto DP, the tile search, and
//! the *executed* Fig-4 program across block sizes (supports experiments
//! E4/E5 — the measured counterpart of the paper's recomputation-vs-reuse
//! trade-off).

use std::collections::HashMap;
use tce_bench::harness::{black_box, BenchmarkId, Criterion};
use tce_bench::{criterion_group, criterion_main};
use tce_core::exec::{Interpreter, NoSink};
use tce_core::scenarios::A3AScenario;
use tce_core::spacetime::{search_tiles, spacetime_dp};

fn bench(c: &mut Criterion) {
    let sc = A3AScenario::new(6, 3, 200);

    c.bench_function("spacetime_dp_a3a", |b| {
        b.iter(|| spacetime_dp(black_box(&sc.tree), &sc.space, usize::MAX))
    });

    let front = spacetime_dp(&sc.tree, &sc.space, usize::MAX).unwrap();
    let cfg = front.min_mem().unwrap().tag.clone();
    c.bench_function("tile_search_a3a", |b| {
        b.iter(|| search_tiles(black_box(&sc.tree), &sc.space, &cfg, 1000))
    });

    // Executed Fig-4 sweep: wall-clock per block size.  The paper's
    // performance curve (improve → level → deteriorate) appears here as
    // integral-flops amortization; the memory-pressure penalty is modeled
    // separately (E5 uses the LRU simulator for it).
    let sc2 = A3AScenario::new(6, 2, 300);
    let amps = sc2.amplitudes(5);
    let mut inputs = HashMap::new();
    inputs.insert(sc2.tensors.by_name("T").unwrap(), &amps);
    let funcs = sc2.functions();
    let mut g = c.benchmark_group("fig4_execution_by_block");
    g.sample_size(10);
    for bb in [1usize, 2, 3, 6] {
        let p = sc2.fig4_program(bb);
        g.bench_with_input(BenchmarkId::from_parameter(bb), &p, |b, p| {
            b.iter(|| {
                let mut interp = Interpreter::new(p, &sc2.space, &inputs, &funcs).unwrap();
                interp.run(&mut NoSink);
                black_box(interp.output().get(&[]))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
