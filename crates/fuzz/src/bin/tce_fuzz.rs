//! `tce-fuzz` — run a seeded conformance campaign from the command line.
//!
//! ```text
//! tce-fuzz [--seed S] [--budget N] [--check all|exec,cost,dist,sparse,roundtrip,sched]
//!          [--grids 1x1,2x2] [--extended] [--out DIR] [--corpus DIR] [--quiet]
//! ```
//!
//! Identical seeds produce identical expression streams and verdicts.
//! Exits 0 when every case passes every configured invariant; exits 1 on
//! any failure, after shrinking it and printing the minimized repro (and
//! its file path when `--out` is given).

use std::path::PathBuf;
use std::process::ExitCode;

use tce_fuzz::{CheckSet, FuzzConfig, GenConfig};

struct Args {
    seed: u64,
    budget: usize,
    check: CheckSet,
    grids: Option<Vec<Vec<usize>>>,
    extended: bool,
    out: Option<PathBuf>,
    corpus: Option<PathBuf>,
    quiet: bool,
}

fn parse_u64(text: &str) -> Result<u64, String> {
    let text = text.trim();
    let parsed = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        text.parse()
    };
    parsed.map_err(|_| format!("not a number: `{text}`"))
}

fn parse_grids(text: &str) -> Result<Vec<Vec<usize>>, String> {
    text.split(',')
        .filter(|s| !s.is_empty())
        .map(|g| {
            g.split('x')
                .map(|d| {
                    d.parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("bad grid `{g}`"))
                })
                .collect()
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 0xCAFE_F00D,
        budget: 200,
        check: CheckSet::all(),
        grids: None,
        extended: false,
        out: None,
        corpus: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--seed" => args.seed = parse_u64(&value("--seed")?)?,
            "--budget" => {
                args.budget = value("--budget")?
                    .parse()
                    .map_err(|_| "bad --budget".to_string())?;
            }
            "--check" => args.check = CheckSet::parse(&value("--check")?)?,
            "--grids" => args.grids = Some(parse_grids(&value("--grids")?)?),
            "--extended" => args.extended = true,
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--corpus" => args.corpus = Some(PathBuf::from(value("--corpus")?)),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: tce-fuzz [--seed S] [--budget N] [--check all|exec,cost,dist,sparse,roundtrip,sched]\n\
                     \x20               [--grids 1x1,2x2] [--extended] [--out DIR] [--corpus DIR] [--quiet]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tce-fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = FuzzConfig::new(args.seed, args.budget);
    if args.extended {
        cfg.gen = GenConfig::extended();
    }
    cfg.check.set = args.check;
    if let Some(grids) = args.grids {
        cfg.check.grids = grids;
    }
    cfg.repro_dir = args.out.clone();
    cfg.corpus_dir = args.corpus;

    if !args.quiet {
        println!(
            "tce-fuzz: seed {:#x}, budget {}, checks {:?}",
            args.seed, args.budget, args.check
        );
    }
    let quiet = args.quiet;
    let report = tce_fuzz::run_campaign_with(&cfg, |case, failed| {
        if !quiet && (case + 1) % 100 == 0 {
            println!("  ... {} cases, {failed} failures", case + 1);
        }
    });

    println!(
        "tce-fuzz: {} cases — {} executor runs, {} kernel-variant runs, {} grids, {} sparse pairs, {} model checks",
        report.cases,
        report.stats.executor_runs,
        report.stats.kernel_variants,
        report.stats.grids,
        report.stats.sparse_pairs,
        report.stats.model_checks,
    );
    if report.passed() {
        println!("tce-fuzz: PASS");
        return ExitCode::SUCCESS;
    }
    for f in &report.failures {
        println!(
            "\ntce-fuzz: FAIL case {} (seed {:#x}) — {}: {}",
            f.case, f.case_seed, f.kind, f.detail
        );
        println!(
            "  minimized to {} operand(s) in {} step(s):",
            f.shrunk_operands, f.shrink_steps
        );
        for line in f.shrunk_src.lines() {
            println!("    {line}");
        }
        match &f.repro_path {
            Some(p) => println!("  repro written to {}", p.display()),
            None => println!("  (rerun with --out DIR to write a repro file)"),
        }
    }
    println!("\ntce-fuzz: {} failure(s)", report.failures.len());
    ExitCode::FAILURE
}
