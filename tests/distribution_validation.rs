//! Distribution-stage validation: the §7 cost model against the simulated
//! distributed machine, on randomized tuples and grids.

use tce_core::dist::{
    enumerate_tuples, move_cost, move_cost_elementwise, optimize_distribution,
    simulate_contraction, DistTuple, Machine,
};
use tce_core::ir::rng::Rng;
use tce_core::ir::{IndexSet, IndexSpace, IndexVar, OpTree, TensorDecl, TensorTable};
use tce_core::par::ProcessorGrid;
use tce_core::tensor::{contract_naive, BinaryContraction, Tensor};

fn space3(n: usize) -> (IndexSpace, IndexVar, IndexVar, IndexVar) {
    let mut sp = IndexSpace::new();
    let r = sp.add_range("N", n);
    let i = sp.add_var("i", r);
    let j = sp.add_var("j", r);
    let k = sp.add_var("k", r);
    (sp, i, j, k)
}

/// The closed-form redistribution volume equals element-by-element
/// enumeration for random (β, α) pairs on random grids.
#[test]
fn move_cost_closed_form_is_exact() {
    let grids = [vec![2usize, 2], vec![2, 3], vec![4], vec![3, 2]];
    let mut rng = Rng::new(0xd001);
    for _ in 0..32 {
        let n = rng.usize_in(3..7);
        let dims = grids[rng.usize_in(0..grids.len())].clone();
        let (sp, i, j, _) = space3(n);
        let grid = ProcessorGrid::new(dims);
        let arr = [i, j];
        let tuples = enumerate_tuples(IndexSet::from_vars(arr), grid.rank());
        let beta = &tuples[rng.usize_in(0..200) % tuples.len()];
        let alpha = &tuples[rng.usize_in(0..200) % tuples.len()];
        let fast = move_cost(&arr, &sp, &grid, beta, alpha);
        let slow = move_cost_elementwise(&arr, &sp, &grid, beta, alpha);
        assert_eq!(
            fast,
            slow,
            "β={} α={}",
            beta.display(&sp),
            alpha.display(&sp)
        );
    }
}

/// Same agreement on 3-D arrays over 3-D grids: random (β, α) pairs drawn
/// from the full tuple enumeration (including `*`/`1` entries and tuples
/// mentioning variables the array does not use) at small extents.
#[test]
fn move_cost_closed_form_is_exact_for_3d_arrays() {
    let grids = [vec![2usize, 2, 2], vec![2, 3, 2], vec![3, 2], vec![2, 2]];
    let mut rng = Rng::new(0xd007);
    for _ in 0..24 {
        let n = rng.usize_in(2..5);
        let dims = grids[rng.usize_in(0..grids.len())].clone();
        let (sp, i, j, k) = space3(n);
        let grid = ProcessorGrid::new(dims);
        let arr = [i, j, k];
        let tuples = enumerate_tuples(IndexSet::from_vars(arr), grid.rank());
        let beta = &tuples[rng.usize_in(0..1000) % tuples.len()];
        let alpha = &tuples[rng.usize_in(0..1000) % tuples.len()];
        let fast = move_cost(&arr, &sp, &grid, beta, alpha);
        let slow = move_cost_elementwise(&arr, &sp, &grid, beta, alpha);
        assert_eq!(
            fast,
            slow,
            "n={n} β={} α={}",
            beta.display(&sp),
            alpha.display(&sp)
        );
    }
}

/// Redistribution to the same tuple is always free.
#[test]
fn move_cost_identity_free() {
    let mut rng = Rng::new(0xd002);
    for _ in 0..32 {
        let n = rng.usize_in(3..8);
        let (sp, i, j, _) = space3(n);
        let grid = ProcessorGrid::new(vec![2, 2]);
        let arr = [i, j];
        let tuples = enumerate_tuples(IndexSet::from_vars(arr), 2);
        let t = &tuples[rng.usize_in(0..100) % tuples.len()];
        assert_eq!(move_cost(&arr, &sp, &grid, t, t), 0);
    }
}

/// Simulated distributed matmul agrees with the sequential kernel for
/// every loop-space distribution.
#[test]
fn simulation_correct_for_random_gamma() {
    let grids = [vec![2usize], vec![3], vec![2, 2], vec![2, 3]];
    let mut rng = Rng::new(0xd003);
    for _ in 0..32 {
        let n = rng.usize_in(3..6);
        let grid_dims = grids[rng.usize_in(0..grids.len())].clone();
        let seed = rng.u64_in(0..100);
        let (sp, i, j, k) = space3(n);
        let grid = ProcessorGrid::new(grid_dims);
        let tuples = enumerate_tuples(IndexSet::from_vars([i, j, k]), grid.rank());
        let gamma: &DistTuple = &tuples[rng.usize_in(0..500) % tuples.len()];
        let a = Tensor::random(&[n, n], seed);
        let b = Tensor::random(&[n, n], seed + 1);
        let (got, stats) =
            simulate_contraction(&[i, k], &[k, j], &[i, j], &sp, &grid, gamma, &a, &b);
        let spec = BinaryContraction {
            a: vec![i, k],
            b: vec![k, j],
            out: vec![i, j],
        };
        let expect = contract_naive(&spec, &sp, &a, &b);
        assert!(got.approx_eq(&expect, 1e-9), "γ = {}", gamma.display(&sp));
        // Work conservation: representative processors cover each
        // iteration exactly once, so max·P ≥ N³ ≥ max.
        let total = (n * n * n) as u128;
        assert!(stats.max_local_iterations >= total / grid.num_processors() as u128);
    }
}

#[test]
fn dp_cost_bounded_by_explicit_strategies() {
    // The DP optimum must never exceed the cost of hand-picked plans
    // (sequential everything; distribute i).
    let (sp, i, j, k) = space3(12);
    let mut tensors = TensorTable::new();
    let ta = tensors.add(TensorDecl::dense("A", vec![sp.range_of(i), sp.range_of(k)]));
    let tb = tensors.add(TensorDecl::dense("B", vec![sp.range_of(k), sp.range_of(j)]));
    let mut tree = OpTree::new();
    let la = tree.leaf_input(ta, vec![i, k]);
    let lb = tree.leaf_input(tb, vec![k, j]);
    tree.contract(la, lb, IndexSet::from_vars([i, j]));
    for (dims, word) in [(vec![2usize], 1u128), (vec![4], 10), (vec![2, 2], 1)] {
        let machine = Machine {
            grid: ProcessorGrid::new(dims),
            word_cost: word,
        };
        let plan = optimize_distribution(&tree, &sp, &machine);
        // Sequential upper bound: all on processor (0,…): 2·N³, no comm.
        assert!(plan.total_cost <= 2 * 12u128.pow(3));
    }
}

#[test]
fn dp_matches_exhaustive_plan_costs_on_single_contraction() {
    // For one contraction, independently enumerate (γ, mode, α) and take
    // the min — must equal the DP (which shares the same cost model but
    // exercises memoization and projection machinery).
    use tce_core::dist::{after_reduction, calc_cost, reduce_cost, ReduceMode};
    let (sp, i, j, k) = space3(6);
    let mut tensors = TensorTable::new();
    let ta = tensors.add(TensorDecl::dense("A", vec![sp.range_of(i), sp.range_of(k)]));
    let tb = tensors.add(TensorDecl::dense("B", vec![sp.range_of(k), sp.range_of(j)]));
    let mut tree = OpTree::new();
    let la = tree.leaf_input(ta, vec![i, k]);
    let lb = tree.leaf_input(tb, vec![k, j]);
    let root = tree.contract(la, lb, IndexSet::from_vars([i, j]));

    let machine = Machine {
        grid: ProcessorGrid::new(vec![2, 2]),
        word_cost: 3,
    };
    let plan = optimize_distribution(&tree, &sp, &machine);

    let loops = IndexSet::from_vars([i, j, k]);
    let sums = k.singleton();
    let result = IndexSet::from_vars([i, j]);
    let dims: Vec<IndexVar> = result.iter().collect();
    let mut best = u128::MAX;
    for gamma in enumerate_tuples(loops, 2) {
        // Operand cost: free if the projected tuple is non-replicated,
        // else cheapest broadcast.
        let op_cost = |opset: IndexSet, odims: &[IndexVar]| -> u128 {
            let proj = gamma.project(opset);
            if proj.no_replicate(opset) {
                0
            } else {
                enumerate_tuples(opset, 2)
                    .iter()
                    .filter(|b| b.no_replicate(opset))
                    .map(|b| move_cost(odims, &sp, &machine.grid, b, &proj) * machine.word_cost)
                    .min()
                    .unwrap()
            }
        };
        let base = op_cost(IndexSet::from_vars([i, k]), &[i, k])
            + op_cost(IndexSet::from_vars([k, j]), &[k, j])
            + calc_cost(loops, 2, &sp, &machine.grid, &gamma);
        for mode in [ReduceMode::Combine, ReduceMode::Replicate] {
            let after = after_reduction(&gamma, result, sums, mode);
            let red =
                reduce_cost(result, sums, &sp, &machine.grid, &gamma, mode) * machine.word_cost;
            for alpha in enumerate_tuples(result, 2) {
                let mv = move_cost(&dims, &sp, &machine.grid, &after, &alpha) * machine.word_cost;
                best = best.min(base + red + mv);
            }
        }
    }
    assert_eq!(plan.total_cost, best);
    let _ = root;
}
