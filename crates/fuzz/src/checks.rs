//! The conformance invariant catalog: every generated program is pushed
//! through each pipeline/executor configuration and cross-checked against
//! an independent reference oracle and against the analytic cost models.
//!
//! Invariants checked per program (selectable via [`CheckSet`]):
//!
//! * **roundtrip** — `compile(unparse(p))` reproduces the statements and
//!   declarations structurally;
//! * **exec** — treeexec (GETT, serial and each thread count bitwise
//!   identical), the scalar interpreter over the fused loop program, the
//!   fused-slice executor, and every supported SIMD kernel variant all
//!   agree with a direct per-term einsum oracle to ≤ `tol` relative error;
//! * **cost** — the traced interpreter FLOP counter equals
//!   `Σ OpTree::total_ops` over the term plans, and the fused executor's
//!   measured peak intermediate live-set equals the memmin DP prediction;
//! * **dist** — on each configured processor grid, distributed execution
//!   agrees with the oracle and its measured redistribution/reduction
//!   traffic equals the closed-form `move_cost`/`reduce_cost` predictions;
//! * **sparse** — for each ≥2-factor term, the leading binary contraction
//!   evaluated through `tce_tensor::sparse::contract_sparse_dense` (with
//!   the zero-structured left operand converted to sparse form) agrees
//!   with the dense contraction;
//! * **sched** — the dependency-aware task-graph schedule
//!   (`--schedule graph`) agrees with the oracle and is bitwise identical
//!   to the sequential schedule at every configured thread count.

use std::collections::HashMap;
use std::sync::Mutex;

use tce_core::{
    synthesize_program, ExecOptions, Schedule, Synthesis, SynthesisConfig, SynthesisError,
};
use tce_ir::rng::{split_seed, Rng};
use tce_ir::{Assignment, Factor, IndexSet, IndexVar, Program, TensorId};
use tce_tensor::{
    contract_naive, contract_sparse_dense, kernels, BinaryContraction, EinsumSpec, IntegralFn,
    SparseTensor, Tensor,
};

/// Which invariant families to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckSet {
    /// Executor-vs-executor differential checks.
    pub exec: bool,
    /// Model conformance (FLOPs, peak live-set).
    pub cost: bool,
    /// Distributed execution + communication-volume conformance.
    pub dist: bool,
    /// Sparse-vs-dense differential check.
    pub sparse: bool,
    /// Unparse→parse structural round trip.
    pub roundtrip: bool,
    /// Task-graph schedule: graph execution agrees with the oracle and is
    /// bitwise identical to the sequential schedule at every thread count.
    pub sched: bool,
}

impl CheckSet {
    /// Everything on.
    pub fn all() -> Self {
        Self {
            exec: true,
            cost: true,
            dist: true,
            sparse: true,
            roundtrip: true,
            sched: true,
        }
    }

    /// Nothing on (combine with the parser below).
    pub fn none() -> Self {
        Self {
            exec: false,
            cost: false,
            dist: false,
            sparse: false,
            roundtrip: false,
            sched: false,
        }
    }

    /// Parse a `--check` argument: `all` or a comma-separated subset of
    /// `exec,cost,dist,sparse,roundtrip,sched`.
    pub fn parse(text: &str) -> Result<Self, String> {
        if text == "all" {
            return Ok(Self::all());
        }
        let mut set = Self::none();
        for part in text.split(',').filter(|s| !s.is_empty()) {
            match part {
                "exec" => set.exec = true,
                "cost" => set.cost = true,
                "dist" => set.dist = true,
                "sparse" => set.sparse = true,
                "roundtrip" => set.roundtrip = true,
                "sched" => set.sched = true,
                other => return Err(format!("unknown check `{other}`")),
            }
        }
        if set == Self::none() {
            return Err("empty check set".into());
        }
        Ok(set)
    }
}

/// Harness-level fault injection, used to prove the harness catches and
/// shrinks real executor bugs without corrupting production kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Bias the GETT tree executor's result whenever the program contains
    /// a term with ≥ 2 factors — a stand-in for a contraction-kernel bug
    /// that only fires on real (non-copy) contractions.
    TreeExecBias,
}

/// Full check configuration.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Invariant families to run.
    pub set: CheckSet,
    /// Processor grids for the `dist` family.
    pub grids: Vec<Vec<usize>>,
    /// Thread counts for the bitwise-determinism sweep (first entry is the
    /// baseline; 1 is always implied).
    pub threads: Vec<usize>,
    /// Relative tolerance for executor-vs-oracle comparisons.
    pub tol: f64,
    /// Seed for input data and integral functions.
    pub data_seed: u64,
    /// Probability an external input is zero-structured (for the sparse
    /// path and general numerics).
    pub zero_prob: f64,
    /// Fraction of entries zeroed in a zero-structured input.
    pub zero_fraction: f64,
    /// Optional injected fault (tests only).
    pub fault: Option<Fault>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            set: CheckSet::all(),
            grids: vec![vec![1, 1], vec![2, 2]],
            threads: vec![2],
            tol: 1e-10,
            data_seed: 0xDA7A,
            zero_prob: 0.4,
            zero_fraction: 0.6,
            fault: None,
        }
    }
}

/// Which invariant family a failure belongs to.  The shrinker treats two
/// failures as "the same bug" when their kinds match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// `Program::validate` or a synthesis stage rejected the program.
    Pipeline,
    /// Unparse→parse round trip diverged.
    Roundtrip,
    /// An executor disagreed with the oracle (or thread counts changed
    /// bits).
    ExecDiff,
    /// A traced measurement diverged from its analytic model.
    CostModel,
    /// Distributed execution diverged (values or communication volume).
    DistComm,
    /// Sparse-vs-dense contraction diverged.
    Sparse,
    /// A non-finite value appeared.
    NonFinite,
    /// A pipeline stage or executor panicked.
    Panic,
}

impl std::fmt::Display for CheckKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CheckKind::Pipeline => "pipeline",
            CheckKind::Roundtrip => "roundtrip",
            CheckKind::ExecDiff => "exec-diff",
            CheckKind::CostModel => "cost-model",
            CheckKind::DistComm => "dist-comm",
            CheckKind::Sparse => "sparse",
            CheckKind::NonFinite => "non-finite",
            CheckKind::Panic => "panic",
        };
        f.write_str(s)
    }
}

/// A failed invariant.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Invariant family.
    pub kind: CheckKind,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl Failure {
    fn new(kind: CheckKind, detail: impl Into<String>) -> Self {
        Self {
            kind,
            detail: detail.into(),
        }
    }
}

/// What a passing case exercised (aggregated per campaign).
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseStats {
    /// Executor runs compared against the oracle.
    pub executor_runs: usize,
    /// SIMD kernel variants exercised beyond the baseline.
    pub kernel_variants: usize,
    /// Grids the dist family covered.
    pub grids: usize,
    /// Sparse-vs-dense contractions compared.
    pub sparse_pairs: usize,
    /// Cost-model equalities asserted.
    pub model_checks: usize,
}

impl CaseStats {
    /// Elementwise accumulate.
    pub fn add(&mut self, o: &CaseStats) {
        self.executor_runs += o.executor_runs;
        self.kernel_variants += o.kernel_variants;
        self.grids += o.grids;
        self.sparse_pairs += o.sparse_pairs;
        self.model_checks += o.model_checks;
    }
}

/// Kernel-variant override and the trace buffer are process-global; every
/// section that touches them serializes here (the test harness runs cases
/// on several threads).
static GLOBAL_STATE_LOCK: Mutex<()> = Mutex::new(());

/// Serializes swaps of the process-wide panic hook (separate from
/// [`GLOBAL_STATE_LOCK`], which [`check_program`] takes internally).
static HOOK_LOCK: Mutex<()> = Mutex::new(());

/// [`check_program`] with panics converted into [`CheckKind::Panic`]
/// failures, so a crashing stage is reported, shrunk, and turned into a
/// repro file like any other divergence instead of killing the campaign.
/// The default panic hook is muted for the duration (the shrinker would
/// otherwise spam one backtrace per candidate).
pub fn check_program_caught(program: &Program, ck: &CheckConfig) -> Result<CaseStats, Failure> {
    let _hook_guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check_program(program, ck)));
    std::panic::set_hook(prev);
    match result {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic payload");
            Err(Failure::new(CheckKind::Panic, format!("panicked: {msg}")))
        }
    }
}

/// Relative closeness at the oracle's scale (mirrors the differential test
/// suites): `|got − expect| ≤ tol · max(1, max|expect|)`.
fn rel_close(got: &Tensor, expect: &Tensor, tol: f64) -> bool {
    if got.shape() != expect.shape() {
        return false;
    }
    let scale = expect.data().iter().fold(1.0f64, |m, &v| m.max(v.abs()));
    got.max_abs_diff(expect) <= tol * scale
}

/// Permutation taking a term plan's canonical output order to the declared
/// LHS order (mirrors the pipeline's internal `lhs_perm`).
fn lhs_perm(stmt: &Assignment) -> Vec<usize> {
    let canon: Vec<IndexVar> = stmt.lhs.index_set().iter().collect();
    stmt.lhs
        .indices
        .iter()
        .map(|v| canon.iter().position(|c| c == v).unwrap())
        .collect()
}

/// External inputs: every tensor read before it is assigned, bound to
/// deterministic (optionally zero-structured) data.
fn make_inputs(program: &Program, ck: &CheckConfig) -> HashMap<TensorId, Tensor> {
    let mut rng = Rng::new(split_seed(ck.data_seed));
    let mut assigned: Vec<TensorId> = Vec::new();
    let mut inputs: HashMap<TensorId, Tensor> = HashMap::new();
    for stmt in &program.stmts {
        for term in &stmt.terms {
            for factor in &term.factors {
                if let Factor::Tensor(r) = factor {
                    if assigned.contains(&r.tensor) || inputs.contains_key(&r.tensor) {
                        continue;
                    }
                    let decl = program.tensors.get(r.tensor);
                    let shape: Vec<usize> = decl
                        .dims
                        .iter()
                        .map(|&d| program.space.range_extent(d))
                        .collect();
                    let mut t =
                        Tensor::random(&shape, split_seed(ck.data_seed ^ (r.tensor.0 as u64 + 1)));
                    if rng.bool_with(ck.zero_prob) {
                        for v in t.data_mut() {
                            if rng.bool_with(ck.zero_fraction) {
                                *v = 0.0;
                            }
                        }
                    }
                    inputs.insert(r.tensor, t);
                }
            }
        }
        assigned.push(stmt.lhs.tensor);
    }
    inputs
}

/// One integral function per name used, seeded from the name.
fn make_funcs(program: &Program, ck: &CheckConfig) -> HashMap<String, IntegralFn> {
    let mut funcs = HashMap::new();
    for stmt in &program.stmts {
        for term in &stmt.terms {
            for factor in &term.factors {
                if let Factor::Func(f) = factor {
                    let seed = f
                        .name
                        .bytes()
                        .fold(ck.data_seed, |h, b| split_seed(h ^ b as u64));
                    funcs
                        .entry(f.name.clone())
                        .or_insert_with(|| IntegralFn::new(f.cost_per_eval, seed));
                }
            }
        }
    }
    funcs
}

/// A sparse-vs-dense job captured while the oracle runs (operand values at
/// the statement's point in the dataflow).
struct SparseJob {
    spec: BinaryContraction,
    a: Tensor,
    b: Tensor,
}

/// The independent oracle: direct per-term einsum over the statement
/// sequence, mirroring the executors' dataflow conventions (computed
/// values shadow external bindings; `+=` starts from the previously
/// *computed* value or zeros, never from an external binding).  Also
/// collects sparse-vs-dense jobs for ≥2-factor terms.
fn reference_outputs(
    program: &Program,
    inputs: &HashMap<TensorId, Tensor>,
    funcs: &HashMap<String, IntegralFn>,
    collect_sparse: bool,
) -> Result<(HashMap<TensorId, Tensor>, Vec<SparseJob>), Failure> {
    let space = &program.space;
    let mut computed: HashMap<TensorId, Tensor> = HashMap::new();
    let mut sparse_jobs = Vec::new();
    for stmt in &program.stmts {
        let shape: Vec<usize> = stmt.lhs.indices.iter().map(|&v| space.extent(v)).collect();
        let mut acc = if stmt.accumulate {
            computed
                .get(&stmt.lhs.tensor)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(&shape))
        } else {
            Tensor::zeros(&shape)
        };
        let lhs_set = stmt.lhs.index_set();
        for term in &stmt.terms {
            // Materialize operand values (computed shadows external).
            let mut operands: Vec<Tensor> = Vec::with_capacity(term.factors.len());
            for factor in &term.factors {
                match factor {
                    Factor::Tensor(r) => {
                        let t = computed
                            .get(&r.tensor)
                            .or_else(|| inputs.get(&r.tensor))
                            .ok_or_else(|| {
                                Failure::new(CheckKind::Pipeline, "unbound tensor in oracle")
                            })?;
                        operands.push(t.clone());
                    }
                    Factor::Func(f) => {
                        let int = &funcs[&f.name];
                        let fshape: Vec<usize> =
                            f.indices.iter().map(|&v| space.extent(v)).collect();
                        operands.push(Tensor::from_fn(&fshape, |idx| int.eval(idx)));
                    }
                }
            }
            let spec = EinsumSpec::new(
                stmt.lhs.indices.clone(),
                term.factors.iter().map(|f| f.indices().to_vec()).collect(),
                term.index_set().minus(lhs_set),
            )
            .map_err(|e| Failure::new(CheckKind::Pipeline, format!("oracle spec: {e}")))?;
            let refs: Vec<&Tensor> = operands.iter().collect();
            let value = spec.eval(space, &refs);
            acc.axpy(term.coeff, &value);

            if collect_sparse && term.factors.len() >= 2 {
                let a_idx = term.factors[0].indices().to_vec();
                let b_idx = term.factors[1].indices().to_vec();
                let sa = IndexSet::from_vars(a_idx.iter().copied());
                let sb = IndexSet::from_vars(b_idx.iter().copied());
                // Keep whatever later factors or the LHS still need.
                let needed = term.factors[2..]
                    .iter()
                    .fold(lhs_set, |s, f| s.union(f.index_set()));
                let out: Vec<IndexVar> = sa.union(sb).inter(needed).iter().collect();
                sparse_jobs.push(SparseJob {
                    spec: BinaryContraction {
                        a: a_idx,
                        b: b_idx,
                        out,
                    },
                    a: operands[0].clone(),
                    b: operands[1].clone(),
                });
            }
        }
        if !acc.data().iter().all(|v| v.is_finite()) {
            return Err(Failure::new(
                CheckKind::NonFinite,
                format!(
                    "oracle produced a non-finite value in `{}`",
                    program.tensors.get(stmt.lhs.tensor).name
                ),
            ));
        }
        computed.insert(stmt.lhs.tensor, acc);
    }
    Ok((computed, sparse_jobs))
}

/// Mirror of `Synthesis::execute_opts` driving each term plan through the
/// scalar interpreter instead of the GETT engine.
fn execute_interpreted_sequence(
    syn: &Synthesis,
    inputs: &HashMap<TensorId, Tensor>,
    funcs: &HashMap<String, IntegralFn>,
) -> Result<HashMap<TensorId, Tensor>, Failure> {
    let space = &syn.program.space;
    let mut computed: HashMap<TensorId, Tensor> = HashMap::new();
    for (si, stmt) in syn.program.stmts.iter().enumerate() {
        let shape: Vec<usize> = stmt.lhs.indices.iter().map(|&v| space.extent(v)).collect();
        let mut acc = if stmt.accumulate {
            computed
                .get(&stmt.lhs.tensor)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(&shape))
        } else {
            Tensor::zeros(&shape)
        };
        for plan in syn.plans.iter().filter(|p| p.stmt_index == si) {
            let mut bound: HashMap<TensorId, &Tensor> =
                inputs.iter().map(|(id, t)| (*id, t)).collect();
            for (id, t) in &computed {
                bound.insert(*id, t);
            }
            let value = plan
                .execute_interpreted(space, &bound, funcs)
                .map_err(|e| Failure::new(CheckKind::ExecDiff, format!("interp: {e}")))?;
            acc.axpy(plan.coeff, &value.permute(&lhs_perm(stmt)));
        }
        computed.insert(stmt.lhs.tensor, acc);
    }
    Ok(computed)
}

/// Compare every assigned tensor against the oracle.
fn compare_outputs(
    program: &Program,
    got: &HashMap<TensorId, Tensor>,
    expect: &HashMap<TensorId, Tensor>,
    tol: f64,
    kind: CheckKind,
    label: &str,
) -> Result<(), Failure> {
    for (id, want) in expect {
        let name = &program.tensors.get(*id).name;
        let have = got
            .get(id)
            .ok_or_else(|| Failure::new(kind, format!("{label}: output `{name}` missing")))?;
        if !have.data().iter().all(|v| v.is_finite()) {
            return Err(Failure::new(
                CheckKind::NonFinite,
                format!("{label}: non-finite value in `{name}`"),
            ));
        }
        if !rel_close(have, want, tol) {
            return Err(Failure::new(
                kind,
                format!(
                    "{label}: `{name}` diverges from oracle by {:e} (tol {tol:e})",
                    have.max_abs_diff(want)
                ),
            ));
        }
    }
    Ok(())
}

/// Apply the injected fault to a tree-executor result set.
fn apply_fault(program: &Program, ck: &CheckConfig, outputs: &mut HashMap<TensorId, Tensor>) {
    if ck.fault != Some(Fault::TreeExecBias) {
        return;
    }
    let has_contraction = program
        .stmts
        .iter()
        .any(|s| s.terms.iter().any(|t| t.factors.len() >= 2));
    if !has_contraction {
        return;
    }
    for t in outputs.values_mut() {
        if let Some(first) = t.data_mut().first_mut() {
            *first += 1e-3;
        }
    }
}

/// Restores the kernel override on drop (also on panic).
struct KernelOverrideGuard;

impl Drop for KernelOverrideGuard {
    fn drop(&mut self) {
        let _ = kernels::set_override(None);
    }
}

/// Run every configured invariant on `program`.  Returns coverage stats on
/// success, or the first [`Failure`] encountered.
pub fn check_program(program: &Program, ck: &CheckConfig) -> Result<CaseStats, Failure> {
    let mut stats = CaseStats::default();
    program
        .validate()
        .map_err(|e| Failure::new(CheckKind::Pipeline, format!("validate: {e}")))?;

    if ck.set.roundtrip {
        check_roundtrip(program)?;
        stats.model_checks += 1;
    }

    let syn = synthesize_program(program.clone(), &SynthesisConfig::default()).map_err(
        |e: SynthesisError| Failure::new(CheckKind::Pipeline, format!("synthesis: {e}")),
    )?;

    let inputs = make_inputs(program, ck);
    let funcs = make_funcs(program, ck);
    let input_refs: HashMap<TensorId, &Tensor> = inputs.iter().map(|(id, t)| (*id, t)).collect();
    let (expect, sparse_jobs) = reference_outputs(program, &inputs, &funcs, ck.set.sparse)?;

    if ck.set.exec {
        // GETT tree executor, serial baseline.
        let mut base = syn
            .execute_opts(&input_refs, &funcs, &ExecOptions::serial())
            .map_err(|e| Failure::new(CheckKind::ExecDiff, format!("treeexec: {e}")))?;
        apply_fault(program, ck, &mut base);
        compare_outputs(
            program,
            &base,
            &expect,
            ck.tol,
            CheckKind::ExecDiff,
            "treeexec",
        )?;
        stats.executor_runs += 1;

        // Thread counts must not change bits.
        for &t in &ck.threads {
            let mut got = syn
                .execute_opts(&input_refs, &funcs, &ExecOptions::with_threads(t))
                .map_err(|e| Failure::new(CheckKind::ExecDiff, format!("treeexec({t}): {e}")))?;
            apply_fault(program, ck, &mut got);
            for (id, want) in &base {
                if got.get(id) != Some(want) {
                    return Err(Failure::new(
                        CheckKind::ExecDiff,
                        format!(
                            "treeexec with {t} threads changed bits in `{}`",
                            program.tensors.get(*id).name
                        ),
                    ));
                }
            }
            stats.executor_runs += 1;
        }

        // Scalar interpreter over the fused loop programs.
        let interp = execute_interpreted_sequence(&syn, &inputs, &funcs)?;
        compare_outputs(
            program,
            &interp,
            &expect,
            ck.tol,
            CheckKind::ExecDiff,
            "interp",
        )?;
        stats.executor_runs += 1;

        // Fused-slice executor.
        let fused = syn
            .execute_fused_opts(&input_refs, &funcs, &ExecOptions::serial())
            .map_err(|e| Failure::new(CheckKind::ExecDiff, format!("fusedexec: {e}")))?;
        compare_outputs(
            program,
            &fused.outputs,
            &expect,
            ck.tol,
            CheckKind::ExecDiff,
            "fusedexec",
        )?;
        stats.executor_runs += 1;
        if ck.set.cost && !fused.peak_matches_model() {
            return Err(Failure::new(
                CheckKind::CostModel,
                format!(
                    "fused peak live-set measured {} ≠ modeled {}",
                    fused.peak_live_elements, fused.modeled_elements
                ),
            ));
        }
        if ck.set.cost {
            stats.model_checks += 1;
        }

        // Every supported SIMD kernel variant (process-global override).
        {
            let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            for v in kernels::supported_variants() {
                let _restore = KernelOverrideGuard;
                kernels::set_override(Some(v))
                    .map_err(|e| Failure::new(CheckKind::ExecDiff, format!("override: {e}")))?;
                let mut got = syn
                    .execute_opts(&input_refs, &funcs, &ExecOptions::serial())
                    .map_err(|e| {
                        Failure::new(CheckKind::ExecDiff, format!("treeexec[{v:?}]: {e}"))
                    })?;
                apply_fault(program, ck, &mut got);
                compare_outputs(
                    program,
                    &got,
                    &expect,
                    ck.tol,
                    CheckKind::ExecDiff,
                    &format!("treeexec[{v:?}]"),
                )?;
                stats.kernel_variants += 1;
            }
        }
    }

    if ck.set.sched {
        // The task-graph schedule must agree with the oracle and be
        // bitwise identical to the sequential schedule at 1 thread and at
        // every configured thread count (scheduling reorders only WHEN
        // nodes run, never the arithmetic inside a node).
        let seq = {
            let mut r = syn
                .execute_opts(&input_refs, &funcs, &ExecOptions::serial())
                .map_err(|e| Failure::new(CheckKind::ExecDiff, format!("sched seq: {e}")))?;
            apply_fault(program, ck, &mut r);
            r
        };
        compare_outputs(
            program,
            &seq,
            &expect,
            ck.tol,
            CheckKind::ExecDiff,
            "sched seq",
        )?;
        let mut counts: Vec<usize> = vec![1];
        counts.extend(ck.threads.iter().copied());
        for t in counts {
            let opts = ExecOptions::with_threads(t).with_schedule(Schedule::Graph);
            let mut got = syn
                .execute_opts(&input_refs, &funcs, &opts)
                .map_err(|e| Failure::new(CheckKind::ExecDiff, format!("sched graph({t}): {e}")))?;
            apply_fault(program, ck, &mut got);
            for (id, want) in &seq {
                if got.get(id) != Some(want) {
                    return Err(Failure::new(
                        CheckKind::ExecDiff,
                        format!(
                            "graph schedule with {t} threads changed bits in `{}`",
                            program.tensors.get(*id).name
                        ),
                    ));
                }
            }
            stats.executor_runs += 1;
        }
    }

    if ck.set.cost {
        // Traced interpreter FLOPs == Σ tree_ops (the exact conformance
        // anchor: GETT pre-reduces exclusive summation indices, so its
        // own flop counter is a lower bound, but the interpreter executes
        // the emitted fused program verbatim).
        let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        tce_trace::reset();
        tce_trace::set_enabled(true);
        let run = execute_interpreted_sequence(&syn, &inputs, &funcs);
        tce_trace::set_enabled(false);
        let trace = tce_trace::take();
        run?;
        let measured = trace.counter_total("exec.interp.flops") as u128;
        let predicted: u128 = syn.plans.iter().map(|p| p.tree_ops).sum();
        if measured != predicted {
            return Err(Failure::new(
                CheckKind::CostModel,
                format!("interp flops measured {measured} ≠ Σ tree_ops {predicted}"),
            ));
        }
        stats.model_checks += 1;
    }

    if ck.set.dist {
        for grid in &ck.grids {
            let cfg = SynthesisConfig {
                machine: Some(tce_dist::Machine::new(tce_par::ProcessorGrid::new(
                    grid.clone(),
                ))),
                ..SynthesisConfig::default()
            };
            let dsyn = synthesize_program(program.clone(), &cfg).map_err(|e| {
                Failure::new(CheckKind::Pipeline, format!("dist synthesis {grid:?}: {e}"))
            })?;
            let summary = dsyn
                .execute_distributed_opts(&input_refs, &funcs, &ExecOptions::serial())
                .map_err(|e| {
                    Failure::new(CheckKind::DistComm, format!("dist exec {grid:?}: {e}"))
                })?;
            compare_outputs(
                program,
                &summary.outputs,
                &expect,
                ck.tol,
                CheckKind::DistComm,
                &format!("dist {grid:?}"),
            )?;
            if summary.moved_elements != summary.predicted_move_elements {
                return Err(Failure::new(
                    CheckKind::DistComm,
                    format!(
                        "grid {grid:?}: moved {} ≠ move_cost {}",
                        summary.moved_elements, summary.predicted_move_elements
                    ),
                ));
            }
            if summary.reduce_words != summary.predicted_reduce_words {
                return Err(Failure::new(
                    CheckKind::DistComm,
                    format!(
                        "grid {grid:?}: reduced {} ≠ reduce_cost {}",
                        summary.reduce_words, summary.predicted_reduce_words
                    ),
                ));
            }
            stats.grids += 1;
        }
    }

    if ck.set.sparse {
        for job in &sparse_jobs {
            if job.spec.validate().is_err() {
                continue;
            }
            let dense = contract_naive(&job.spec, &program.space, &job.a, &job.b);
            let sparse_a = SparseTensor::from_dense(&job.a, 0.0);
            let via_sparse = contract_sparse_dense(&job.spec, &program.space, &sparse_a, &job.b);
            if !rel_close(&via_sparse, &dense, ck.tol) {
                return Err(Failure::new(
                    CheckKind::Sparse,
                    format!(
                        "sparse×dense diverges from dense by {:e}",
                        via_sparse.max_abs_diff(&dense)
                    ),
                ));
            }
            stats.sparse_pairs += 1;
        }
    }

    Ok(stats)
}

/// `compile(unparse(p))` must reproduce statements and declarations.
fn check_roundtrip(program: &Program) -> Result<(), Failure> {
    let text = tce_lang::unparse(program);
    let back = tce_lang::compile(&text)
        .map_err(|e| Failure::new(CheckKind::Roundtrip, format!("re-parse failed: {e}")))?;
    if back.stmts != program.stmts {
        return Err(Failure::new(
            CheckKind::Roundtrip,
            "statements changed across unparse→parse",
        ));
    }
    if back.space.num_vars() != program.space.num_vars()
        || back.space.num_ranges() != program.space.num_ranges()
        || back.tensors.len() != program.tensors.len()
    {
        return Err(Failure::new(
            CheckKind::Roundtrip,
            "declarations changed across unparse→parse",
        ));
    }
    for (id, d1) in program.tensors.iter() {
        let d2 = back.tensors.get(id);
        if d1.name != d2.name || d1.dims != d2.dims {
            return Err(Failure::new(
                CheckKind::Roundtrip,
                format!("tensor `{}` changed across unparse→parse", d1.name),
            ));
        }
    }
    Ok(())
}
