//! Index variables, index ranges, and interned index sets.
//!
//! Tensor contraction expressions are described in terms of *index
//! variables* (`a`, `b`, `i`, `j`, …), each drawn from a named *range*
//! (e.g. `V` for virtual/unoccupied orbitals, `O` for occupied orbitals in
//! the paper's quantum-chemistry setting).  Every optimization algorithm in
//! the framework manipulates *sets* of index variables — the indices of an
//! intermediate array, the summation indices of a contraction, the fused
//! loops on a fusion-graph edge — so index variables are interned as small
//! integers and sets are represented as 64-bit masks.

use std::fmt;

/// Identifier of a declared index range (e.g. `V = 3000`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RangeId(pub u16);

/// An interned index variable. At most [`IndexSet::MAX_VARS`] variables may
/// be interned in one [`IndexSpace`]; the paper notes that "the number of
/// index variables in practical applications is small" (§5), and real
/// coupled-cluster terms use well under 64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexVar(pub u8);

impl IndexVar {
    /// The singleton set containing just this variable.
    #[inline]
    pub fn singleton(self) -> IndexSet {
        IndexSet(1u64 << self.0)
    }
}

#[derive(Debug, Clone)]
struct RangeInfo {
    name: String,
    extent: usize,
}

#[derive(Debug, Clone)]
struct VarInfo {
    name: String,
    range: RangeId,
}

/// The declaration context for an optimization problem: named ranges with
/// extents, and index variables bound to ranges.
///
/// Extents are mutable (`set_extent`) so that the same expression can be
/// analyzed symbolically at paper scale (`V = 3000`) and executed at a
/// scaled-down extent in the same session.
#[derive(Debug, Clone, Default)]
pub struct IndexSpace {
    ranges: Vec<RangeInfo>,
    vars: Vec<VarInfo>,
}

impl IndexSpace {
    /// Create an empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a named range with the given extent.
    ///
    /// # Panics
    /// Panics if a range with the same name exists or if more than
    /// `u16::MAX` ranges are declared.
    pub fn add_range(&mut self, name: &str, extent: usize) -> RangeId {
        assert!(
            self.range_by_name(name).is_none(),
            "range `{name}` already declared"
        );
        let id = RangeId(u16::try_from(self.ranges.len()).expect("too many ranges"));
        self.ranges.push(RangeInfo {
            name: name.to_string(),
            extent,
        });
        id
    }

    /// Declare an index variable drawn from `range`.
    ///
    /// # Panics
    /// Panics if the name is taken or the variable limit is exceeded.
    pub fn add_var(&mut self, name: &str, range: RangeId) -> IndexVar {
        assert!(
            self.var_by_name(name).is_none(),
            "index variable `{name}` already declared"
        );
        assert!(
            self.vars.len() < IndexSet::MAX_VARS,
            "more than {} index variables",
            IndexSet::MAX_VARS
        );
        assert!((range.0 as usize) < self.ranges.len(), "unknown range");
        let id = IndexVar(self.vars.len() as u8);
        self.vars.push(VarInfo {
            name: name.to_string(),
            range,
        });
        id
    }

    /// Convenience: declare several variables on one range, names given as a
    /// whitespace- or comma-separated list (e.g. `"a b c d"`).
    pub fn add_vars(&mut self, names: &str, range: RangeId) -> Vec<IndexVar> {
        names
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|s| !s.is_empty())
            .map(|n| self.add_var(n, range))
            .collect()
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of declared ranges.
    pub fn num_ranges(&self) -> usize {
        self.ranges.len()
    }

    /// The set of all declared variables.
    pub fn all_vars(&self) -> IndexSet {
        if self.vars.is_empty() {
            IndexSet::EMPTY
        } else {
            IndexSet(u64::MAX >> (64 - self.vars.len()))
        }
    }

    /// The extent of the range a variable is bound to.
    #[inline]
    pub fn extent(&self, v: IndexVar) -> usize {
        self.ranges[self.vars[v.0 as usize].range.0 as usize].extent
    }

    /// The extent of a range.
    #[inline]
    pub fn range_extent(&self, r: RangeId) -> usize {
        self.ranges[r.0 as usize].extent
    }

    /// Re-scale a range (used to evaluate the same problem at several
    /// extents).
    pub fn set_extent(&mut self, r: RangeId, extent: usize) {
        self.ranges[r.0 as usize].extent = extent;
    }

    /// The range a variable is bound to.
    #[inline]
    pub fn range_of(&self, v: IndexVar) -> RangeId {
        self.vars[v.0 as usize].range
    }

    /// Variable name.
    pub fn var_name(&self, v: IndexVar) -> &str {
        &self.vars[v.0 as usize].name
    }

    /// Range name.
    pub fn range_name(&self, r: RangeId) -> &str {
        &self.ranges[r.0 as usize].name
    }

    /// Look up a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<IndexVar> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| IndexVar(i as u8))
    }

    /// Look up a range by name.
    pub fn range_by_name(&self, name: &str) -> Option<RangeId> {
        self.ranges
            .iter()
            .position(|r| r.name == name)
            .map(|i| RangeId(i as u16))
    }

    /// Product of the extents of all variables in `set` — the number of
    /// points in the iteration space spanned by `set`.  Returns 1 for the
    /// empty set.  Saturates at `u128::MAX` (paper-scale spaces overflow
    /// `u64`: `V⁵·O` at `V = 3000, O = 100` is ≈ 2.4 × 10¹⁹).
    pub fn iteration_points(&self, set: IndexSet) -> u128 {
        set.iter()
            .fold(1u128, |acc, v| acc.saturating_mul(self.extent(v) as u128))
    }

    /// Render a set as comma-separated variable names in id order, e.g.
    /// `a,c,i,k`.
    pub fn set_to_string(&self, set: IndexSet) -> String {
        let mut s = String::new();
        for (i, v) in set.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(self.var_name(v));
        }
        s
    }

    /// Parse a comma/space separated list of declared variable names.
    pub fn parse_set(&self, text: &str) -> Option<IndexSet> {
        let mut set = IndexSet::EMPTY;
        for name in text
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|s| !s.is_empty())
        {
            set.insert(self.var_by_name(name)?);
        }
        Some(set)
    }

    /// Iterate over all declared variables.
    pub fn vars(&self) -> impl Iterator<Item = IndexVar> + '_ {
        (0..self.vars.len()).map(|i| IndexVar(i as u8))
    }
}

/// A set of index variables, represented as a bitmask.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IndexSet(pub u64);

impl IndexSet {
    /// The empty set.
    pub const EMPTY: IndexSet = IndexSet(0);
    /// Maximum number of distinct index variables per [`IndexSpace`].
    pub const MAX_VARS: usize = 64;

    /// Build a set from an iterator of variables.
    pub fn from_vars<I: IntoIterator<Item = IndexVar>>(vars: I) -> Self {
        let mut s = Self::EMPTY;
        for v in vars {
            s.insert(v);
        }
        s
    }

    /// True if the set contains no variables.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of variables in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, v: IndexVar) -> bool {
        self.0 & (1 << v.0) != 0
    }

    /// Insert a variable.
    #[inline]
    pub fn insert(&mut self, v: IndexVar) {
        self.0 |= 1 << v.0;
    }

    /// Remove a variable.
    #[inline]
    pub fn remove(&mut self, v: IndexVar) {
        self.0 &= !(1 << v.0);
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: IndexSet) -> IndexSet {
        IndexSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn inter(self, other: IndexSet) -> IndexSet {
        IndexSet(self.0 & other.0)
    }

    /// Set difference `self − other`.
    #[inline]
    pub fn minus(self, other: IndexSet) -> IndexSet {
        IndexSet(self.0 & !other.0)
    }

    /// Subset test (`self ⊆ other`).
    #[inline]
    pub fn is_subset(self, other: IndexSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// True if the sets share no variable.
    #[inline]
    pub fn is_disjoint(self, other: IndexSet) -> bool {
        self.0 & other.0 == 0
    }

    /// True if one of the two sets contains the other — the paper's
    /// feasibility condition on fusion-chain scopes ("disjoint or a
    /// subset/superset of each other", §5) reduced to sets.
    #[inline]
    pub fn is_comparable(self, other: IndexSet) -> bool {
        self.is_subset(other) || other.is_subset(self)
    }

    /// Iterate over members in increasing id order.
    pub fn iter(self) -> SetIter {
        SetIter(self.0)
    }

    /// Enumerate all subsets of `self` (including `∅` and `self`).
    /// The classic sub-mask walk; `2^len` subsets.
    pub fn subsets(self) -> SubsetIter {
        SubsetIter {
            mask: self.0,
            cur: 0,
            done: false,
        }
    }
}

impl fmt::Debug for IndexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", v.0)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<IndexVar> for IndexSet {
    fn from_iter<T: IntoIterator<Item = IndexVar>>(iter: T) -> Self {
        Self::from_vars(iter)
    }
}

/// Iterator over the members of an [`IndexSet`].
pub struct SetIter(u64);

impl Iterator for SetIter {
    type Item = IndexVar;

    #[inline]
    fn next(&mut self) -> Option<IndexVar> {
        if self.0 == 0 {
            None
        } else {
            let bit = self.0.trailing_zeros() as u8;
            self.0 &= self.0 - 1;
            Some(IndexVar(bit))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SetIter {}

/// Iterator over all subsets of a mask, in the canonical sub-mask order
/// `0, …, mask` (ascending when viewed as integers restricted to the mask).
pub struct SubsetIter {
    mask: u64,
    cur: u64,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = IndexSet;

    fn next(&mut self) -> Option<IndexSet> {
        if self.done {
            return None;
        }
        let out = IndexSet(self.cur);
        if self.cur == self.mask {
            self.done = true;
        } else {
            // Standard trick: next submask of `mask` after `cur`.
            self.cur = (self.cur.wrapping_sub(self.mask)) & self.mask;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_ov() -> (IndexSpace, Vec<IndexVar>, Vec<IndexVar>) {
        let mut sp = IndexSpace::new();
        let v = sp.add_range("V", 3000);
        let o = sp.add_range("O", 100);
        let vs = sp.add_vars("a b c d e f", v);
        let os = sp.add_vars("i j k l", o);
        (sp, vs, os)
    }

    #[test]
    fn declare_and_lookup() {
        let (sp, vs, os) = space_ov();
        assert_eq!(sp.num_vars(), 10);
        assert_eq!(sp.num_ranges(), 2);
        assert_eq!(sp.extent(vs[0]), 3000);
        assert_eq!(sp.extent(os[3]), 100);
        assert_eq!(sp.var_name(vs[2]), "c");
        assert_eq!(sp.var_by_name("k"), Some(os[2]));
        assert_eq!(sp.var_by_name("z"), None);
        assert_eq!(sp.range_by_name("O"), Some(sp.range_of(os[0])));
    }

    #[test]
    #[should_panic(expected = "already declared")]
    fn duplicate_var_panics() {
        let mut sp = IndexSpace::new();
        let r = sp.add_range("N", 10);
        sp.add_var("a", r);
        sp.add_var("a", r);
    }

    #[test]
    #[should_panic(expected = "already declared")]
    fn duplicate_range_panics() {
        let mut sp = IndexSpace::new();
        sp.add_range("N", 10);
        sp.add_range("N", 20);
    }

    #[test]
    fn set_algebra() {
        let (sp, vs, os) = space_ov();
        let abc = IndexSet::from_vars([vs[0], vs[1], vs[2]]);
        let bcd = IndexSet::from_vars([vs[1], vs[2], vs[3]]);
        assert_eq!(abc.union(bcd).len(), 4);
        assert_eq!(abc.inter(bcd).len(), 2);
        assert_eq!(abc.minus(bcd), vs[0].singleton());
        assert!(abc.inter(bcd).is_subset(abc));
        assert!(!abc.is_subset(bcd));
        assert!(abc.is_disjoint(IndexSet::from_vars([os[0], os[1]])));
        assert_eq!(sp.set_to_string(abc), "a,b,c");
        assert_eq!(sp.parse_set("a, b  c"), Some(abc));
        assert_eq!(sp.parse_set("a,zz"), None);
    }

    #[test]
    fn comparability_matches_paper_condition() {
        let (_, vs, _) = space_ov();
        let small = IndexSet::from_vars([vs[0]]);
        let big = IndexSet::from_vars([vs[0], vs[1]]);
        let other = IndexSet::from_vars([vs[2]]);
        assert!(small.is_comparable(big));
        assert!(big.is_comparable(small));
        assert!(IndexSet::EMPTY.is_comparable(big));
        // Disjoint sets are *not* comparable as sets, but chains with
        // disjoint scopes are legal; that distinction lives in tce-fusion.
        assert!(!big.is_comparable(other.union(small)));
    }

    #[test]
    fn iteration_points_products() {
        let (sp, vs, os) = space_ov();
        assert_eq!(sp.iteration_points(IndexSet::EMPTY), 1);
        assert_eq!(sp.iteration_points(vs[0].singleton()), 3000);
        let set = IndexSet::from_vars([vs[0], vs[1], os[0]]);
        assert_eq!(sp.iteration_points(set), 3000u128 * 3000 * 100);
    }

    #[test]
    fn iteration_points_saturate() {
        let mut sp = IndexSpace::new();
        let r = sp.add_range("H", usize::MAX);
        let vars: Vec<_> = (0..10).map(|i| sp.add_var(&format!("x{i}"), r)).collect();
        let all = IndexSet::from_vars(vars);
        assert_eq!(sp.iteration_points(all), u128::MAX);
    }

    #[test]
    fn subset_enumeration() {
        let (_, vs, _) = space_ov();
        let set = IndexSet::from_vars([vs[0], vs[2], vs[4]]);
        let subs: Vec<_> = set.subsets().collect();
        assert_eq!(subs.len(), 8);
        assert_eq!(subs[0], IndexSet::EMPTY);
        assert_eq!(*subs.last().unwrap(), set);
        for s in &subs {
            assert!(s.is_subset(set));
        }
        // All distinct.
        let mut sorted = subs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }

    #[test]
    fn empty_set_subsets() {
        let subs: Vec<_> = IndexSet::EMPTY.subsets().collect();
        assert_eq!(subs, vec![IndexSet::EMPTY]);
    }

    #[test]
    fn set_iter_order_and_len() {
        let (_, vs, os) = space_ov();
        let set = IndexSet::from_vars([os[1], vs[0], vs[3]]);
        let items: Vec<_> = set.iter().collect();
        assert_eq!(items, vec![vs[0], vs[3], os[1]]);
        assert_eq!(set.iter().len(), 3);
    }

    #[test]
    fn all_vars_mask() {
        let (sp, _, _) = space_ov();
        assert_eq!(sp.all_vars().len(), 10);
        let empty = IndexSpace::new();
        assert_eq!(empty.all_vars(), IndexSet::EMPTY);
    }

    #[test]
    fn rescale_extent() {
        let (mut sp, vs, _) = space_ov();
        let r = sp.range_of(vs[0]);
        sp.set_extent(r, 16);
        assert_eq!(sp.extent(vs[5]), 16);
    }
}
