//! Differential and property tests for the SIMD kernel layer.
//!
//! The scalar kernel is the oracle: every SIMD variant the host supports
//! must agree with it to 1e-10 on the GETT engine (FMA changes rounding,
//! so bitwise equality across variants is *not* expected), must be
//! bitwise deterministic across thread counts *within* a variant, and —
//! because packing and permutes are pure copies — the permute fast paths
//! must be bitwise identical across variants.  A pinned golden-bits test
//! locks `TCE_KERNEL=scalar` to the exact results the engine produced
//! before runtime dispatch existed.

use std::collections::HashMap;
use std::sync::Mutex;
use tce_core::dist::Machine;
use tce_core::ir::rng::{seed_from_env, split_seed, SeedGuard};
use tce_core::ir::{IndexSpace, IndexVar, TensorId};
use tce_core::par::ProcessorGrid;
use tce_core::tensor::{
    contract_gett_with_variant, contract_naive, kernels, BinaryContraction, KernelVariant, Tensor,
};
use tce_core::{synthesize, ExecOptions, SynthesisConfig};

/// Serializes tests that flip the process-wide kernel override (the
/// pipeline executors and the permute fast path read
/// [`kernels::active`]).
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn spec_path(name: &str) -> String {
    format!("{}/../../examples/specs/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Data seed for the property-style tests: the literal default normally,
/// or a value derived from `TCE_TEST_SEED` when it is set.  The pinned
/// golden-bits test below deliberately bypasses this — its literals ARE
/// the contract.
fn dseed(base: u64) -> u64 {
    if std::env::var_os("TCE_TEST_SEED").is_some() {
        split_seed(seed_from_env(base) ^ base)
    } else {
        base
    }
}

fn matmul(m: usize, n: usize, k: usize) -> (BinaryContraction, IndexSpace, Tensor, Tensor) {
    let mut sp = IndexSpace::new();
    let rm = sp.add_range("M", m);
    let rn = sp.add_range("N", n);
    let rk = sp.add_range("K", k);
    let i = sp.add_var("i", rm);
    let j = sp.add_var("j", rn);
    let kk = sp.add_var("k", rk);
    let spec = BinaryContraction {
        a: vec![i, kk],
        b: vec![kk, j],
        out: vec![i, j],
    };
    let a = Tensor::random(&[m, k], dseed((m * 31 + k) as u64));
    let b = Tensor::random(&[k, n], dseed((k * 17 + n) as u64));
    (spec, sp, a, b)
}

/// Shapes chosen to exercise every remainder case of the register tiles
/// (MR ∈ {4, 8}, NR ∈ {4, 6}): exact multiples, one-off edges, degenerate
/// extent-1 dims, and sizes straddling the MC/NC/KC macro blocks.
const GEMM_SHAPES: [(usize, usize, usize); 8] = [
    (1, 1, 1),
    (5, 1, 9),
    (1, 7, 1),
    (8, 6, 8),
    (9, 7, 13),
    (16, 12, 40),
    (31, 29, 37),
    (8, 4, 192),
];

/// The shapes that straddle the MC/NC/KC macro blocks — the slowest part
/// of the sweep, only worthwhile with optimized kernels, so release-only.
#[cfg(not(debug_assertions))]
const GEMM_SHAPES_LARGE: [(usize, usize, usize); 4] =
    [(64, 64, 192), (65, 67, 193), (127, 5, 200), (100, 90, 110)];
#[cfg(debug_assertions)]
const GEMM_SHAPES_LARGE: [(usize, usize, usize); 0] = [];

#[test]
fn gemm_simd_matches_scalar_on_remainder_shapes() {
    let _guard = SeedGuard::new(
        "gemm_simd_matches_scalar_on_remainder_shapes",
        seed_from_env(0),
    );
    for &(m, n, k) in GEMM_SHAPES.iter().chain(&GEMM_SHAPES_LARGE) {
        let (spec, sp, a, b) = matmul(m, n, k);
        let oracle = contract_gett_with_variant(&spec, &sp, &a, &b, 1, KernelVariant::Scalar);
        for variant in kernels::supported_variants() {
            let got = contract_gett_with_variant(&spec, &sp, &a, &b, 1, variant);
            assert!(
                oracle.approx_eq(&got, 1e-10),
                "{variant} ({m},{n},{k}): diff {:e}",
                oracle.max_abs_diff(&got)
            );
        }
    }
}

#[test]
fn gemm_bitwise_deterministic_across_threads_within_variant() {
    let _guard = SeedGuard::new(
        "gemm_bitwise_deterministic_across_threads_within_variant",
        seed_from_env(0),
    );
    // The macro-block-straddling shapes are release-only (debug builds
    // run unoptimized kernels, where they dominate the suite's runtime).
    let shapes: &[(usize, usize, usize)] = if cfg!(debug_assertions) {
        &[(9, 7, 13), (33, 21, 48)]
    } else {
        &[(65, 67, 193), (9, 7, 13), (127, 5, 200)]
    };
    for &(m, n, k) in shapes {
        let (spec, sp, a, b) = matmul(m, n, k);
        for variant in kernels::supported_variants() {
            let t1 = contract_gett_with_variant(&spec, &sp, &a, &b, 1, variant);
            for threads in [2, 3, 5] {
                let tn = contract_gett_with_variant(&spec, &sp, &a, &b, threads, variant);
                assert_eq!(t1, tn, "{variant} ({m},{n},{k}) threads={threads}");
            }
        }
    }
}

#[test]
fn high_rank_contraction_with_degenerate_extents() {
    // Batched four-index contraction where two extents are 1: all pack
    // paths must handle single-element groups.
    for extents in [[1usize, 5, 4, 9, 1, 7], [2, 1, 1, 8, 6, 1]] {
        let mut sp = IndexSpace::new();
        let names = ["b", "c", "d", "e", "f", "l"];
        let vars: Vec<IndexVar> = names
            .iter()
            .zip(extents)
            .map(|(n, e)| {
                let r = sp.add_range(&format!("R{n}"), e);
                sp.add_var(n, r)
            })
            .collect();
        let (b, c, d, e, f, l) = (vars[0], vars[1], vars[2], vars[3], vars[4], vars[5]);
        let spec = BinaryContraction {
            a: vec![b, e, f, l],
            b: vec![c, d, e, l],
            out: vec![b, c, d, f],
        };
        let ta = Tensor::random(&[extents[0], extents[3], extents[4], extents[5]], dseed(51));
        let tb = Tensor::random(&[extents[1], extents[2], extents[3], extents[5]], dseed(52));
        let oracle = contract_naive(&spec, &sp, &ta, &tb);
        for variant in kernels::supported_variants() {
            let got = contract_gett_with_variant(&spec, &sp, &ta, &tb, 2, variant);
            assert!(
                oracle.approx_eq(&got, 1e-10),
                "{variant} {extents:?}: diff {:e}",
                oracle.max_abs_diff(&got)
            );
        }
    }
}

#[test]
fn unit_stride_and_gather_pack_paths_agree_bitwise() {
    // The same logical contraction through both pack paths: a[k,i] makes
    // the M group unit-stride (vector-copy pack), a[i,k] makes it
    // strided (gather pack).  The packed panels contain identical values
    // either way, so each variant must produce bitwise-identical output.
    let (m, n, k) = (61, 35, 77);
    let mut sp = IndexSpace::new();
    let rm = sp.add_range("M", m);
    let rn = sp.add_range("N", n);
    let rk = sp.add_range("K", k);
    let i = sp.add_var("i", rm);
    let j = sp.add_var("j", rn);
    let kk = sp.add_var("k", rk);
    let a_ik = Tensor::random(&[m, k], dseed(71));
    let a_ki = a_ik.permute(&[1, 0]);
    let b = Tensor::random(&[k, n], dseed(72));
    let gather_spec = BinaryContraction {
        a: vec![i, kk],
        b: vec![kk, j],
        out: vec![i, j],
    };
    let unit_spec = BinaryContraction {
        a: vec![kk, i],
        b: vec![kk, j],
        out: vec![i, j],
    };
    for variant in kernels::supported_variants() {
        let via_gather = contract_gett_with_variant(&gather_spec, &sp, &a_ik, &b, 2, variant);
        let via_unit = contract_gett_with_variant(&unit_spec, &sp, &a_ki, &b, 2, variant);
        assert_eq!(via_gather, via_unit, "{variant}");
    }
}

#[test]
fn permute_bitwise_identical_across_variants_and_threads() {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let t = Tensor::random(&[7, 5, 9, 4, 3], dseed(81));
    // Transpose-heavy, aligned-innermost, and full-reversal perms cover
    // the transpose-tile, vector-copy, and generic leaf paths.
    for perm in [
        vec![4, 3, 2, 1, 0],
        vec![1, 0, 2, 3, 4],
        vec![2, 0, 1, 4, 3],
        vec![0, 1, 2, 3, 4],
        vec![4, 0, 1, 2, 3],
    ] {
        kernels::set_override(Some(KernelVariant::Scalar)).unwrap();
        let oracle = t.permute(&perm);
        for variant in kernels::supported_variants() {
            kernels::set_override(Some(variant)).unwrap();
            for threads in [1, 3] {
                let got = t.permute_with_threads(&perm, threads);
                assert_eq!(oracle, got, "{variant} perm {perm:?} threads={threads}");
            }
        }
        kernels::set_override(None).unwrap();
        // Spot-check against element lookup: out[idx] reads the source
        // at coordinates c with c[perm[d]] = idx[d].
        let got = t.permute(&perm);
        let mut idx = [0usize; 5];
        for _ in 0..64 {
            let mut src = [0usize; 5];
            for (d, &p) in perm.iter().enumerate() {
                src[p] = idx[d];
            }
            assert_eq!(got.get(&idx), t.get(&src));
            // Advance a coarse odometer over the permuted shape.
            for d in (0..5).rev() {
                idx[d] += 1 + d;
                if idx[d] < got.shape()[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
    }
}

/// Large permute: above the parallel threshold, bitwise equal across
/// variants and thread counts.
#[test]
fn large_permute_parallel_matches_scalar() {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let t = Tensor::random(&[48, 37, 53], dseed(82));
    for perm in [vec![2, 1, 0], vec![1, 2, 0], vec![2, 0, 1]] {
        kernels::set_override(Some(KernelVariant::Scalar)).unwrap();
        let oracle = t.permute_with_threads(&perm, 1);
        for variant in kernels::supported_variants() {
            kernels::set_override(Some(variant)).unwrap();
            for threads in [1, 4] {
                assert_eq!(
                    oracle,
                    t.permute_with_threads(&perm, threads),
                    "{variant} perm {perm:?} threads={threads}"
                );
            }
        }
        kernels::set_override(None).unwrap();
    }
}

/// Run a synthesized program end-to-end under one kernel variant.
fn run_pipeline(
    src: &str,
    cfg: &SynthesisConfig,
    variant: KernelVariant,
    mode: &str,
) -> HashMap<TensorId, Tensor> {
    kernels::set_override(Some(variant)).unwrap();
    let syn = synthesize(src, cfg).unwrap();
    let mut written: Vec<bool> = vec![false; syn.program.tensors.len()];
    let mut owned: Vec<(TensorId, Tensor)> = Vec::new();
    for stmt in &syn.program.stmts {
        for term in &stmt.terms {
            for f in &term.factors {
                if let tce_core::ir::Factor::Tensor(r) = f {
                    if !written[r.tensor.0 as usize] && !owned.iter().any(|(id, _)| *id == r.tensor)
                    {
                        let decl = syn.program.tensors.get(r.tensor);
                        let shape: Vec<usize> = decl
                            .dims
                            .iter()
                            .map(|&rg| syn.program.space.range_extent(rg))
                            .collect();
                        owned.push((
                            r.tensor,
                            Tensor::random(&shape, dseed(7 ^ r.tensor.0 as u64)),
                        ));
                    }
                }
            }
        }
        written[stmt.lhs.tensor.0 as usize] = true;
    }
    let inputs: HashMap<_, _> = owned.iter().map(|(id, t)| (*id, t)).collect();
    let funcs = HashMap::new();
    let opts = ExecOptions::with_threads(2);
    let out = match mode {
        "tree" => syn.execute_opts(&inputs, &funcs, &opts).unwrap(),
        "fused" => {
            syn.execute_fused_opts(&inputs, &funcs, &opts)
                .unwrap()
                .outputs
        }
        "dist" => {
            syn.execute_distributed_opts(&inputs, &funcs, &opts)
                .unwrap()
                .outputs
        }
        other => panic!("unknown mode {other}"),
    };
    kernels::set_override(None).unwrap();
    out
}

fn assert_outputs_close(
    scalar: &HashMap<TensorId, Tensor>,
    simd: &HashMap<TensorId, Tensor>,
    label: &str,
) {
    assert_eq!(scalar.len(), simd.len(), "{label}: output sets differ");
    for (id, t) in scalar {
        let u = &simd[id];
        assert!(
            t.approx_eq(u, 1e-10),
            "{label}: tensor {id:?} diverges by {:e}",
            t.max_abs_diff(u)
        );
    }
}

#[test]
fn treeexec_and_fused_simd_match_scalar() {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let src = std::fs::read_to_string(spec_path("ccsd_section2.tce")).unwrap();
    let cfg = SynthesisConfig::default();
    let best = kernels::detect_best();
    for mode in ["tree", "fused"] {
        let scalar = run_pipeline(&src, &cfg, KernelVariant::Scalar, mode);
        if best == KernelVariant::Scalar {
            continue;
        }
        let simd = run_pipeline(&src, &cfg, best, mode);
        assert_outputs_close(&scalar, &simd, mode);
    }
}

#[test]
fn distributed_simd_matches_scalar() {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let src = std::fs::read_to_string(spec_path("ccsd_section2.tce")).unwrap();
    let cfg = SynthesisConfig {
        machine: Some(Machine {
            grid: ProcessorGrid::new(vec![2, 2]),
            word_cost: 100,
        }),
        ..SynthesisConfig::default()
    };
    let scalar = run_pipeline(&src, &cfg, KernelVariant::Scalar, "dist");
    let best = kernels::detect_best();
    if best != KernelVariant::Scalar {
        let simd = run_pipeline(&src, &cfg, best, "dist");
        assert_outputs_close(&scalar, &simd, "dist");
    }
}

/// `(Σ elements, first element, last element)` as raw f64 bit patterns.
fn sig(t: &Tensor) -> (u64, u64, u64) {
    let d = t.data();
    (
        d.iter().copied().sum::<f64>().to_bits(),
        d[0].to_bits(),
        d[d.len() - 1].to_bits(),
    )
}

/// Pinned bit patterns captured from the engine as it shipped before
/// runtime dispatch existed: the scalar variant must reproduce them
/// forever (`TCE_KERNEL=scalar` is the compatibility escape hatch).
#[test]
fn golden_bits_scalar_reproduces_pre_dispatch_engine() {
    // C[i,j] = Σ_k A[i,k]·B[k,j] at (100, 90, 110).
    let (spec, sp, a, b) = {
        let mut sp = IndexSpace::new();
        let rm = sp.add_range("M", 100);
        let rn = sp.add_range("N", 90);
        let rk = sp.add_range("K", 110);
        let i = sp.add_var("i", rm);
        let j = sp.add_var("j", rn);
        let k = sp.add_var("k", rk);
        let spec = BinaryContraction {
            a: vec![i, k],
            b: vec![k, j],
            out: vec![i, j],
        };
        let a = Tensor::random(&[100, 110], 11);
        let b = Tensor::random(&[110, 90], 12);
        (spec, sp, a, b)
    };
    let out = contract_gett_with_variant(&spec, &sp, &a, &b, 1, KernelVariant::Scalar);
    assert_eq!(
        sig(&out),
        (0xc0759222311a46fc, 0x3fd15d768e65096f, 0xc009bf2ef7ba45c0),
        "matmul golden bits moved"
    );

    // X[a,e,c,f] = Σ_ij T[i,j,a,e]·U[i,j,c,f] at V=13, O=9.
    let (spec, sp, t, u) = {
        let mut sp = IndexSpace::new();
        let rv = sp.add_range("V", 13);
        let ro = sp.add_range("O", 9);
        let av = sp.add_var("a", rv);
        let ev = sp.add_var("e", rv);
        let cv = sp.add_var("c", rv);
        let fv = sp.add_var("f", rv);
        let i = sp.add_var("i", ro);
        let j = sp.add_var("j", ro);
        let spec = BinaryContraction {
            a: vec![i, j, av, ev],
            b: vec![i, j, cv, fv],
            out: vec![av, ev, cv, fv],
        };
        let t = Tensor::random(&[9, 9, 13, 13], 21);
        let u = Tensor::random(&[9, 9, 13, 13], 22);
        (spec, sp, t, u)
    };
    let out = contract_gett_with_variant(&spec, &sp, &t, &u, 1, KernelVariant::Scalar);
    assert_eq!(
        sig(&out),
        (0xc075403bcdc7eb68, 0x3fe1ceef04ff471a, 0x400080103c9934dd),
        "ccsd golden bits moved"
    );

    // out[p,j,i] = Σ_k a[i,p,k]·b[k,j,p] — batched, transposed output.
    let (spec, sp, a, b) = {
        let mut sp = IndexSpace::new();
        let rp = sp.add_range("P", 3);
        let ri = sp.add_range("I", 17);
        let rj = sp.add_range("J", 19);
        let rk = sp.add_range("K", 23);
        let p = sp.add_var("p", rp);
        let i = sp.add_var("i", ri);
        let j = sp.add_var("j", rj);
        let k = sp.add_var("k", rk);
        let spec = BinaryContraction {
            a: vec![i, p, k],
            b: vec![k, j, p],
            out: vec![p, j, i],
        };
        let a = Tensor::random(&[17, 3, 23], 31);
        let b = Tensor::random(&[23, 19, 3], 32);
        (spec, sp, a, b)
    };
    let out = contract_gett_with_variant(&spec, &sp, &a, &b, 1, KernelVariant::Scalar);
    assert_eq!(
        sig(&out),
        (0xc04b7e1aa300e251, 0xbff5eb276b32dce7, 0xbfa83dd65077a067),
        "batch golden bits moved"
    );
}

/// A traced multi-threaded run must surface the kernel-layer counters:
/// variant dispatch, block sizes, pack/kernel time, and pool accounting.
#[test]
fn traced_run_reports_kernel_and_pool_counters() {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Batched so the tile grid has several tasks: a single-task run
    // would collapse to one thread and never engage the worker pool.
    let mut sp = IndexSpace::new();
    let rp = sp.add_range("P", 4);
    let rm = sp.add_range("M", 48);
    let rn = sp.add_range("N", 40);
    let rk = sp.add_range("K", 64);
    let p = sp.add_var("p", rp);
    let i = sp.add_var("i", rm);
    let j = sp.add_var("j", rn);
    let k = sp.add_var("k", rk);
    let spec = BinaryContraction {
        a: vec![p, i, k],
        b: vec![p, k, j],
        out: vec![p, i, j],
    };
    let a = Tensor::random(&[4, 48, 64], dseed(91));
    let b = Tensor::random(&[4, 64, 40], dseed(92));
    let variant = kernels::active();
    tce_trace::reset();
    tce_trace::set_enabled(true);
    {
        let _s = tce_trace::span("stage.exec");
        std::hint::black_box(contract_gett_with_variant(&spec, &sp, &a, &b, 2, variant));
    }
    tce_trace::set_enabled(false);
    let trace = tce_trace::take();
    let report = trace.report();
    let active_name = variant.name();
    assert_eq!(
        trace.counter_total(&format!("gett.kernel_variant.{active_name}")),
        1,
        "dispatched variant not recorded"
    );
    assert!(trace.counter_max("gett.mc") > 0 && trace.counter_max("gett.kc") > 0);
    assert!(trace.counter_total("gett.kernel_ns") > 0);
    assert!(
        trace.counter_total("pool.busy_ns") + trace.counter_total("pool.idle_ns") > 0,
        "pool accounting missing from traced threads=2 run"
    );
    assert!(
        report.kernel_variants.iter().any(|(n, _)| n == active_name),
        "report missing kernel variant: {report}"
    );
    assert!(report.to_string().contains("gett kernel:"));
}
