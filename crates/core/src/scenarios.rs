//! Canned paper scenarios shared by the examples, integration tests and
//! benchmark harnesses.
//!
//! * [`section2_source`] — the §2 running example `S = Σ A·B·C·D`;
//! * [`A3AScenario`] — the §3 `A3A` energy component: `X` contracted from
//!   amplitudes, `Y` contracted from the expensive integrals `f1`/`f2`,
//!   and the scalar energy `E = Σ X·Y`, with *executable* unfused (Fig. 2)
//!   and tiled/partially-fused (Figs. 3–4) loop programs plus the paper's
//!   analytic space/time tables.

use std::collections::HashMap;
use tce_ir::{IndexSet, IndexSpace, IndexVar, NodeId, OpTree, RangeId, TensorDecl, TensorTable};
use tce_loops::{ARef, ArrayKind, LoopProgram, LoopVarId, Stmt, Sub, VarRange};
use tce_tensor::{IntegralFn, Tensor};

/// Source text of the §2 example at extent `n`.
pub fn section2_source(n: usize) -> String {
    format!(
        "
        range N = {n};
        index a, b, c, d, e, f, i, j, k, l : N;
        tensor A(N, N, N, N);
        tensor B(N, N, N, N);
        tensor C(N, N, N, N);
        tensor D(N, N, N, N);
        tensor S(N, N, N, N);
        S[a,b,i,j] = sum[c,d,e,f,k,l] A[a,c,i,k] * B[b,e,f,l] * C[d,f,j,k] * D[c,d,e,l];
    "
    )
}

/// The A3A energy-component scenario of paper §3.
///
/// Index conventions follow the paper: `a, c, e, f, b` are unoccupied
/// ("virtual") orbitals of extent `V`; `i, j, k` are occupied orbitals of
/// extent `O`; `C_i` is the arithmetic cost of one integral evaluation.
#[derive(Debug, Clone)]
pub struct A3AScenario {
    /// Index space (ranges `V`, `O`).
    pub space: IndexSpace,
    /// Tensor table (the amplitude tensor `T[i,j,a,e]`-style input).
    pub tensors: TensorTable,
    /// Virtual-orbital extent.
    pub v_range: RangeId,
    /// Occupied-orbital extent.
    pub o_range: RangeId,
    /// Integral cost `C_i`.
    pub ci: u64,
    /// The operator tree `E = (X)·(Y)` with `X = Σ_ij T·T`,
    /// `Y = Σ_bk f1·f2`.
    pub tree: OpTree,
    /// Node ids: X contraction, T1 leaf (f1), T2 leaf (f2), Y contraction.
    pub x_node: NodeId,
    /// `f1` leaf.
    pub t1_node: NodeId,
    /// `f2` leaf.
    pub t2_node: NodeId,
    /// Y contraction node.
    pub y_node: NodeId,
    /// Index variables `a, c, e, f, b, i, j, k`.
    pub vars: A3AVars,
}

/// The scenario's index variables.
#[derive(Debug, Clone, Copy)]
pub struct A3AVars {
    /// Virtual index `a`.
    pub a: IndexVar,
    /// Virtual index `c`.
    pub c: IndexVar,
    /// Virtual index `e`.
    pub e: IndexVar,
    /// Virtual index `f`.
    pub f: IndexVar,
    /// Virtual index `b`.
    pub b: IndexVar,
    /// Occupied index `i`.
    pub i: IndexVar,
    /// Occupied index `j`.
    pub j: IndexVar,
    /// Occupied index `k`.
    pub k: IndexVar,
}

impl A3AScenario {
    /// Build the scenario at extents `v`, `o` with integral cost `ci`.
    pub fn new(v: usize, o: usize, ci: u64) -> Self {
        let mut space = IndexSpace::new();
        let v_range = space.add_range("V", v);
        let o_range = space.add_range("O", o);
        let vars = A3AVars {
            a: space.add_var("a", v_range),
            c: space.add_var("c", v_range),
            e: space.add_var("e", v_range),
            f: space.add_var("f", v_range),
            b: space.add_var("b", v_range),
            i: space.add_var("i", o_range),
            j: space.add_var("j", o_range),
            k: space.add_var("k", o_range),
        };
        let mut tensors = TensorTable::new();
        // Amplitudes t_ij^{ae}: stored input of shape O×O×V×V.
        let t_amp = tensors.add(TensorDecl::dense(
            "T",
            vec![o_range, o_range, v_range, v_range],
        ));

        let A3AVars {
            a,
            c,
            e,
            f,
            b,
            i,
            j,
            k,
        } = vars;
        let mut tree = OpTree::new();
        let l1 = tree.leaf_input(t_amp, vec![i, j, a, e]);
        let l2 = tree.leaf_input(t_amp, vec![i, j, c, f]);
        let x_node = tree.contract(l1, l2, IndexSet::from_vars([a, e, c, f]));
        let t1_node = tree.leaf_func("f1", vec![c, e, b, k], ci);
        let t2_node = tree.leaf_func("f2", vec![a, f, b, k], ci);
        let y_node = tree.contract(t1_node, t2_node, IndexSet::from_vars([c, e, a, f]));
        tree.contract(x_node, y_node, IndexSet::EMPTY);

        Self {
            space,
            tensors,
            v_range,
            o_range,
            ci,
            tree,
            x_node,
            t1_node,
            t2_node,
            y_node,
            vars,
        }
    }

    /// Current `V` extent.
    pub fn v(&self) -> usize {
        self.space.range_extent(self.v_range)
    }

    /// Current `O` extent.
    pub fn o(&self) -> usize {
        self.space.range_extent(self.o_range)
    }

    /// Deterministic amplitude tensor for execution.
    pub fn amplitudes(&self, seed: u64) -> Tensor {
        let (v, o) = (self.v(), self.o());
        Tensor::random(&[o, o, v, v], seed)
    }

    /// Integral-function bindings (`f1`, `f2`).
    pub fn functions(&self) -> HashMap<String, IntegralFn> {
        let mut m = HashMap::new();
        m.insert("f1".to_string(), IntegralFn::new(self.ci, 0xF1));
        m.insert("f2".to_string(), IntegralFn::new(self.ci, 0xF2));
        m
    }

    /// The paper's Fig. 2 analytic table at the current extents:
    /// `(array, space, time)` rows for `X, T1, T2, Y, E`.
    pub fn fig2_table(&self) -> Vec<(&'static str, u128, u128)> {
        let (v, o, ci) = (self.v() as u128, self.o() as u128, self.ci as u128);
        vec![
            ("X", v.pow(4), v.pow(4) * o.pow(2)),
            ("T1", v.pow(3) * o, ci * v.pow(3) * o),
            ("T2", v.pow(3) * o, ci * v.pow(3) * o),
            ("Y", v.pow(4), v.pow(5) * o),
            ("E", 1, v.pow(4)),
        ]
    }

    /// The Fig. 4 analytic table for block size `bb` (Fig. 3 is `bb = 1`):
    /// `(array, space, time)`.
    pub fn fig4_table(&self, bb: usize) -> Vec<(&'static str, u128, u128)> {
        let (v, o, ci, b) = (
            self.v() as u128,
            self.o() as u128,
            self.ci as u128,
            bb as u128,
        );
        let tiles = (self.v() as u128).div_ceil(b);
        vec![
            ("X", b.pow(4), v.pow(4) * o.pow(2)),
            ("T1", b.pow(2), ci * tiles.pow(2) * v.pow(3) * o),
            ("T2", b.pow(2), ci * tiles.pow(2) * v.pow(3) * o),
            ("Y", b.pow(4), v.pow(5) * o),
            ("E", 1, v.pow(4)),
        ]
    }

    /// Executable unfused program (paper Fig. 2): every intermediate at
    /// full size, maximal reuse of the integral arrays.
    pub fn fig2_program(&self) -> tce_loops::BuiltProgram {
        tce_loops::unfused_program(&self.tree, &self.space, &self.tensors, "E")
    }

    /// Executable tiled / partially-fused program (paper Fig. 4; `bb = 1`
    /// gives the fully-fused Fig. 3, `bb = V` the maximal-reuse Fig. 2
    /// behaviour with block-local buffers).
    ///
    /// Structure, with `a = a_t·B + a_i` etc.:
    ///
    /// ```text
    /// E = 0
    /// for a_t, e_t, c_t, f_t
    ///   X = 0;  for a_i,e_i,c_i,f_i { for i,j { X[..] += T·T } }
    ///   Y = 0
    ///   for b, k
    ///     for c_i,e_i { T1[c_i,e_i] = f1(c,e,b,k) }
    ///     for a_i,f_i { T2[a_i,f_i] = f2(a,f,b,k) }
    ///     for c_i,e_i,a_i,f_i { Y[..] += T1·T2 }
    ///   for c_i,e_i,a_i,f_i { E += X·Y }
    /// ```
    pub fn fig4_program(&self, bb: usize) -> LoopProgram {
        let A3AVars {
            a,
            c,
            e,
            f,
            b,
            i,
            j,
            k,
        } = self.vars;
        let mut p = LoopProgram::new();
        let tile = |p: &mut LoopProgram, v: IndexVar, name: &str| -> (LoopVarId, LoopVarId) {
            let vt = p.add_var(
                &format!("{name}_t"),
                VarRange::Tile {
                    index: v,
                    block: bb,
                },
            );
            let vi = p.add_var(
                &format!("{name}_i"),
                VarRange::Intra {
                    index: v,
                    block: bb,
                },
            );
            (vt, vi)
        };
        let (at, ai) = tile(&mut p, a, "a");
        let (et, ei) = tile(&mut p, e, "e");
        let (ct, ci_) = tile(&mut p, c, "c");
        let (ft, fi) = tile(&mut p, f, "f");
        let vb = p.add_var("b", VarRange::Full(b));
        let vk = p.add_var("k", VarRange::Full(k));
        let vi_ = p.add_var("i", VarRange::Full(i));
        let vj = p.add_var("j", VarRange::Full(j));

        let intra = |v: IndexVar| VarRange::Intra {
            index: v,
            block: bb,
        };
        let t_amp = self.tensors.by_name("T").unwrap();
        let arr_t = p.add_array(
            "T",
            vec![
                VarRange::Full(i),
                VarRange::Full(j),
                VarRange::Full(a),
                VarRange::Full(e),
            ],
            ArrayKind::Input(t_amp),
        );
        // NOTE: the amplitude tensor is referenced twice with different
        // index patterns (T_ijae and T_ijcf); both go through `arr_t`.
        let arr_x = p.add_array(
            "X",
            vec![intra(a), intra(e), intra(c), intra(f)],
            ArrayKind::Intermediate,
        );
        let arr_t1 = p.add_array("T1", vec![intra(c), intra(e)], ArrayKind::Intermediate);
        let arr_t2 = p.add_array("T2", vec![intra(a), intra(f)], ArrayKind::Intermediate);
        let arr_y = p.add_array(
            "Y",
            vec![intra(c), intra(e), intra(a), intra(f)],
            ArrayKind::Intermediate,
        );
        let arr_e = p.add_array("E", vec![], ArrayKind::Output);
        let f1 = p.add_func("f1", self.ci);
        let f2 = p.add_func("f2", self.ci);

        let full = |tv: LoopVarId, iv: LoopVarId| Sub::Tiled {
            tile: tv,
            intra: iv,
            block: bb,
        };
        let (sa, se, sc, sf) = (full(at, ai), full(et, ei), full(ct, ci_), full(ft, fi));

        // X block: for a_i,e_i,c_i,f_i { for i,j { X += T_ijae·T_ijcf } }
        let x_nest = tce_loops::nest(
            vec![ai, ei, ci_, fi, vi_, vj],
            vec![Stmt::Accum {
                lhs: ARef {
                    array: arr_x,
                    subs: vec![Sub::Var(ai), Sub::Var(ei), Sub::Var(ci_), Sub::Var(fi)],
                },
                rhs: vec![
                    ARef {
                        array: arr_t,
                        subs: vec![Sub::Var(vi_), Sub::Var(vj), sa, se],
                    },
                    ARef {
                        array: arr_t,
                        subs: vec![Sub::Var(vi_), Sub::Var(vj), sc, sf],
                    },
                ],
                coeff: 1.0,
            }],
        );
        // Integral blocks + Y accumulation inside b,k.
        let t1_nest = tce_loops::nest(
            vec![ci_, ei],
            vec![Stmt::Eval {
                lhs: ARef {
                    array: arr_t1,
                    subs: vec![Sub::Var(ci_), Sub::Var(ei)],
                },
                func: f1,
                args: vec![sc, se, Sub::Var(vb), Sub::Var(vk)],
            }],
        );
        let t2_nest = tce_loops::nest(
            vec![ai, fi],
            vec![Stmt::Eval {
                lhs: ARef {
                    array: arr_t2,
                    subs: vec![Sub::Var(ai), Sub::Var(fi)],
                },
                func: f2,
                args: vec![sa, sf, Sub::Var(vb), Sub::Var(vk)],
            }],
        );
        let y_nest = tce_loops::nest(
            vec![ci_, ei, ai, fi],
            vec![Stmt::Accum {
                lhs: ARef {
                    array: arr_y,
                    subs: vec![Sub::Var(ci_), Sub::Var(ei), Sub::Var(ai), Sub::Var(fi)],
                },
                rhs: vec![
                    ARef {
                        array: arr_t1,
                        subs: vec![Sub::Var(ci_), Sub::Var(ei)],
                    },
                    ARef {
                        array: arr_t2,
                        subs: vec![Sub::Var(ai), Sub::Var(fi)],
                    },
                ],
                coeff: 1.0,
            }],
        );
        let bk_nest = tce_loops::nest(vec![vb, vk], vec![t1_nest, t2_nest, y_nest]);
        // E accumulation.
        let e_nest = tce_loops::nest(
            vec![ci_, ei, ai, fi],
            vec![Stmt::Accum {
                lhs: ARef {
                    array: arr_e,
                    subs: vec![],
                },
                rhs: vec![
                    ARef {
                        array: arr_x,
                        subs: vec![Sub::Var(ai), Sub::Var(ei), Sub::Var(ci_), Sub::Var(fi)],
                    },
                    ARef {
                        array: arr_y,
                        subs: vec![Sub::Var(ci_), Sub::Var(ei), Sub::Var(ai), Sub::Var(fi)],
                    },
                ],
                coeff: 1.0,
            }],
        );

        p.body.push(Stmt::Init { array: arr_e });
        p.body.push(tce_loops::nest(
            vec![at, et, ct, ft],
            vec![
                Stmt::Init { array: arr_x },
                x_nest,
                Stmt::Init { array: arr_y },
                bk_nest,
                e_nest,
            ],
        ));
        p.validate().expect("fig4 program well-formed");
        p
    }

    /// Reference value of `E` computed from first principles (dense
    /// materialization of X and Y, then the dot product).
    pub fn reference_energy(&self, amplitudes: &Tensor) -> f64 {
        let funcs = self.functions();
        let mut inputs = HashMap::new();
        inputs.insert(self.tensors.by_name("T").unwrap(), amplitudes);
        let out = tce_exec::execute_tree(&self.tree, &self.space, &inputs, &funcs, 1)
            .expect("scenario bindings are complete");
        out.get(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_exec::{Interpreter, NoSink};

    #[test]
    fn fig4_program_matches_reference_for_every_block_size() {
        let sc = A3AScenario::new(4, 2, 50);
        let amps = sc.amplitudes(1);
        let expect = sc.reference_energy(&amps);
        let mut inputs = HashMap::new();
        inputs.insert(sc.tensors.by_name("T").unwrap(), &amps);
        let funcs = sc.functions();
        for bb in [1usize, 2, 3, 4] {
            let p = sc.fig4_program(bb);
            let mut interp = Interpreter::new(&p, &sc.space, &inputs, &funcs).unwrap();
            interp.run(&mut NoSink);
            let got = interp.output().get(&[]);
            assert!(
                (got - expect).abs() <= 1e-9 * expect.abs().max(1.0),
                "B = {bb}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn fig4_measured_integral_evals_match_table() {
        let sc = A3AScenario::new(4, 2, 50);
        let amps = sc.amplitudes(2);
        let mut inputs = HashMap::new();
        inputs.insert(sc.tensors.by_name("T").unwrap(), &amps);
        let funcs = sc.functions();
        for bb in [1usize, 2, 4] {
            let p = sc.fig4_program(bb);
            let mut interp = Interpreter::new(&p, &sc.space, &inputs, &funcs).unwrap();
            interp.run(&mut NoSink);
            // Table row T1: C_i·(V/B)²·V³·O flops → evals = (V/B)²·V³·O...
            // per function: V²(intra c,e)·(V/B)²(tiles)·V(b)·O(k)
            //             = (V/B)²·V³·O... at V=4: tiles=(4/B)².
            let table = sc.fig4_table(bb);
            let expect_flops = table[1].2 + table[2].2;
            assert_eq!(interp.stats.func_flops, expect_flops, "B = {bb}");
            // Memory: X + Y + T1 + T2 (+ scalar E output).
            let expect_mem: u128 = table[..4].iter().map(|r| r.1).sum::<u128>() + 1;
            assert_eq!(interp.allocated_temp_elements(), expect_mem, "B = {bb}");
        }
    }

    #[test]
    fn fig2_unfused_costs_match_table() {
        let sc = A3AScenario::new(4, 2, 50);
        let built = sc.fig2_program();
        let mem = tce_loops::memory_report(&built.program, &sc.space);
        let table = sc.fig2_table();
        // X, T1, T2, Y + scalar E.
        let expect_mem: u128 = table[..4].iter().map(|r| r.1).sum::<u128>() + 1;
        assert_eq!(mem.temp_elements, expect_mem);
        let ops = tce_loops::op_counts(&built.program, &sc.space);
        // T1/T2 rows are the integral flops.
        assert_eq!(ops.func_flops, table[1].2 + table[2].2);
        // X and Y rows are contraction iteration spaces ×2; E row ×2.
        assert_eq!(
            ops.contraction_flops,
            2 * (table[0].2 + table[3].2 + table[4].2)
        );
    }

    #[test]
    fn section2_source_compiles() {
        let prog = tce_lang::compile(&section2_source(4)).unwrap();
        assert_eq!(prog.stmts.len(), 1);
    }
}
