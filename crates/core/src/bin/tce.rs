//! `tce` — command-line driver for the synthesis system.
//!
//! ```text
//! tce SPEC.tce [--memory-limit N] [--cache N] [--grid PxQx…]
//!              [--word-cost N] [--execute] [--fused] [--distributed]
//!              [--seed S] [--threads T] [--schedule seq|graph]
//!              [--trace OUT.json] [--kernel scalar|sse2|avx2]
//!              [--calibration PROFILE.json]
//! tce serve [--addr HOST:PORT] [--workers N] [--queue N] [--timeout-ms N]
//! tce calibrate --out PROFILE.json [--budget-ms N] [--seed S] [--threads T]
//! ```
//!
//! Reads a tensor-contraction specification, runs the full optimization
//! pipeline (paper Fig. 5), prints the per-stage report for every term,
//! and — with `--execute` — runs the synthesized statement sequence on
//! deterministic random inputs, printing a summary of every result tensor.
//! `--threads` sets the worker count for the contraction kernels
//! (default: the `TCE_THREADS` environment variable, then the machine's
//! available parallelism); results are bitwise identical either way.
//! `--schedule graph` runs statements and contraction subtrees through
//! the dependency-aware task-graph scheduler (independent work overlaps;
//! results stay bitwise identical to the default `seq` order).
//! `--trace OUT.json` enables the `tce-trace` observability layer
//! (implies `--execute`), writes a chrome://tracing-compatible event
//! file, and prints a profile report.  `--kernel` pins the contraction
//! engine's SIMD micro-kernel variant (default: best the host supports,
//! overridable via `TCE_KERNEL`; `scalar` reproduces pre-dispatch
//! results bit for bit).  `--distributed` (requires
//! `--grid`, implies `--execute`) runs the statement sequence on the
//! sharded distributed machine and prints measured vs. modeled
//! communication volumes.  `--fused` (implies `--execute`) runs every
//! term through the fused-slice executor at its memory-minimization
//! configuration and prints the measured vs. modeled peak intermediate
//! live-set, failing if they differ.  `tce serve` starts the concurrent
//! compile-and-execute service (see `tce_serve` and `tce_core::serve`):
//! one warm process answering line-protocol requests with the same
//! result lines the one-shot `--execute` path prints.  `tce calibrate`
//! runs the seeded microbenchmark probes of `tce_calib` and writes a
//! versioned JSON profile of measured hardware rates; loading it back
//! with `--calibration FILE` (or the `TCE_CALIBRATION` environment
//! variable, which also applies to `tce serve`) switches the space-time,
//! locality, and distribution cost models from the paper's abstract unit
//! costs to measured time-based rates and prints a predicted-vs-measured
//! wall-time line after `--execute`.  Without a profile every plan choice
//! is bit-identical to the uncalibrated pipeline.

use std::collections::HashMap;
use std::process::ExitCode;
use tce_core::dist::Machine;
use tce_core::locality::MemoryHierarchy;
use tce_core::par::ProcessorGrid;
use tce_core::{synthesize, ExecOptions, SynthesisConfig};

struct Args {
    spec_path: String,
    memory_limit: u128,
    cache: Option<u128>,
    grid: Option<Vec<usize>>,
    word_cost: u128,
    execute: bool,
    fused: bool,
    distributed: bool,
    seed: u64,
    threads: Option<usize>,
    schedule: tce_core::Schedule,
    trace: Option<String>,
    kernel: Option<tce_core::tensor::KernelVariant>,
    calibration: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        spec_path: String::new(),
        memory_limit: u128::MAX,
        cache: None,
        grid: None,
        word_cost: 100,
        execute: false,
        fused: false,
        distributed: false,
        seed: 42,
        threads: None,
        schedule: tce_core::Schedule::default(),
        trace: None,
        kernel: None,
        calibration: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--memory-limit" => {
                args.memory_limit = it
                    .next()
                    .ok_or("--memory-limit needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --memory-limit: {e}"))?;
            }
            "--cache" => {
                args.cache = Some(
                    it.next()
                        .ok_or("--cache needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --cache: {e}"))?,
                );
            }
            "--grid" => {
                let spec = it.next().ok_or("--grid needs a value like 2x4")?;
                let dims: Result<Vec<usize>, _> =
                    spec.split('x').map(|d| d.parse::<usize>()).collect();
                let dims = dims.map_err(|e| format!("bad --grid `{spec}`: {e}"))?;
                if dims.is_empty() || dims.contains(&0) {
                    return Err(format!(
                        "bad --grid `{spec}`: every dimension must be at least 1"
                    ));
                }
                args.grid = Some(dims);
            }
            "--word-cost" => {
                args.word_cost = it
                    .next()
                    .ok_or("--word-cost needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --word-cost: {e}"))?;
            }
            "--execute" => args.execute = true,
            "--fused" => {
                args.fused = true;
                args.execute = true;
            }
            "--distributed" => {
                args.distributed = true;
                args.execute = true;
            }
            "--trace" => {
                args.trace = Some(it.next().ok_or("--trace needs an output path")?);
                args.execute = true;
            }
            "--threads" => {
                let t: usize = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if t == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                args.threads = Some(t);
            }
            "--schedule" => {
                let name = it.next().ok_or("--schedule needs seq|graph")?;
                args.schedule = name.parse()?;
            }
            "--kernel" => {
                let name = it.next().ok_or("--kernel needs a variant name")?;
                args.kernel = Some(
                    tce_core::tensor::KernelVariant::parse(&name)
                        .map_err(|e| format!("bad --kernel: {e}"))?,
                );
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--calibration" => {
                args.calibration = Some(it.next().ok_or("--calibration needs a profile path")?);
            }
            "--help" | "-h" => {
                return Err("usage: tce SPEC.tce [--memory-limit N] [--cache N] \
                            [--grid PxQ] [--word-cost N] [--execute] [--fused] \
                            [--distributed] [--seed S] [--threads T] \
                            [--schedule seq|graph] [--trace OUT.json] \
                            [--kernel scalar|sse2|avx2] [--calibration FILE]"
                    .to_string())
            }
            other if args.spec_path.is_empty() && !other.starts_with('-') => {
                args.spec_path = other.to_string();
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if args.spec_path.is_empty() {
        return Err("no specification file given (try --help)".to_string());
    }
    if args.distributed && args.grid.is_none() {
        return Err("--distributed requires --grid (e.g. --grid 2x4)".to_string());
    }
    if args.fused && args.distributed {
        return Err("--fused and --distributed are mutually exclusive".to_string());
    }
    Ok(args)
}

fn serve_args() -> Result<tce_serve::ServeConfig, String> {
    let mut cfg = tce_serve::ServeConfig {
        addr: "127.0.0.1:7470".to_string(),
        workers: tce_core::par::default_threads(),
        ..tce_serve::ServeConfig::default()
    };
    let mut it = std::env::args().skip(2);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = it.next().ok_or("--addr needs HOST:PORT")?,
            "--workers" => {
                let w: usize = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
                if w == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                cfg.workers = w;
            }
            "--queue" => {
                let q: usize = it
                    .next()
                    .ok_or("--queue needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --queue: {e}"))?;
                if q == 0 {
                    return Err("--queue must be at least 1".to_string());
                }
                cfg.queue_cap = q;
            }
            "--timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--timeout-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --timeout-ms: {e}"))?;
                if ms == 0 {
                    return Err("--timeout-ms must be at least 1".to_string());
                }
                cfg.timeout = std::time::Duration::from_millis(ms);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: tce serve [--addr HOST:PORT] [--workers N] [--queue N]                      [--timeout-ms N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown serve argument `{other}` (try --help)")),
        }
    }
    Ok(cfg)
}

/// Validate every numeric environment knob before any work: a typo'd
/// `TCE_THREADS=banana` or degenerate `TCE_PLAN_CACHE_CAP=0` is a
/// one-line diagnostic and a nonzero exit, not a silent clamp or a panic
/// inside the first contraction.
fn validate_env() -> Result<(), String> {
    tce_core::par::threads_env_requested()?;
    tce_core::tensor::plan_cache_env_requested()?;
    tce_core::tensor::bufpool_env_requested()?;
    tce_core::calib::calibration_env_requested()?;
    Ok(())
}

struct CalibrateArgs {
    out: String,
    budget_ms: u64,
    seed: u64,
    threads: Option<usize>,
}

fn calibrate_args() -> Result<CalibrateArgs, String> {
    let mut args = CalibrateArgs {
        out: String::new(),
        budget_ms: tce_core::calib::probe::ProbeOptions::default().budget_ms,
        seed: tce_core::calib::probe::ProbeOptions::default().seed,
        threads: None,
    };
    let mut it = std::env::args().skip(2);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => args.out = it.next().ok_or("--out needs a file path")?,
            "--budget-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--budget-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --budget-ms: {e}"))?;
                if ms == 0 {
                    return Err("--budget-ms must be at least 1".to_string());
                }
                args.budget_ms = ms;
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                let t: usize = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if t == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                args.threads = Some(t);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: tce calibrate --out PROFILE.json [--budget-ms N] [--seed S] \
                     [--threads T]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown calibrate argument `{other}` (try --help)")),
        }
    }
    if args.out.is_empty() {
        return Err("tce calibrate needs --out PROFILE.json (try --help)".to_string());
    }
    Ok(args)
}

fn calibrate_main() -> ExitCode {
    let args = match calibrate_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_env() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = tce_core::tensor::kernels::env_requested() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    let opts = tce_core::calib::probe::ProbeOptions {
        seed: args.seed,
        budget_ms: args.budget_ms,
        threads: args.threads.unwrap_or_else(tce_core::par::default_threads),
    };
    let profile = tce_core::calib::probe::run_probes(&opts);
    if let Err(e) = std::fs::write(&args.out, profile.to_json()) {
        eprintln!("cannot write profile {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    for (variant, rates) in &profile.gemm_gfs {
        println!(
            "  gemm {variant}: {:.2} / {:.2} / {:.2} GF/s (small/medium/large)",
            rates.small, rates.medium, rates.large
        );
    }
    println!(
        "  copy {:.2} GB/s, permute {:.2} GB/s, dispatch {:.1} ns/task",
        profile.copy_gbs, profile.permute_gbs, profile.dispatch_ns
    );
    for (level, gbs) in &profile.mem_gbs {
        println!("  {level}: {gbs:.2} GB/s");
    }
    println!("calibration profile written to {}", args.out);
    ExitCode::SUCCESS
}

fn serve_main() -> ExitCode {
    let cfg = match serve_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_env() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = tce_core::tensor::kernels::env_requested() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    tce_serve::server::install_sigterm_drain();
    // `TCE_CALIBRATION` (validated above) applies measured cost rates to
    // every request this service compiles.
    let calibration = match tce_core::calib::calibration_env_requested() {
        Ok(p) => p.map(|p| p.rates(tce_core::tensor::kernels::active().name())),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let handler = std::sync::Arc::new(
        tce_core::serve::PipelineHandler::default().with_calibration(calibration),
    );
    let server = match tce_serve::Server::bind(&cfg, handler) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", cfg.addr);
            return ExitCode::FAILURE;
        }
    };
    // The OS-resolved address on its own line so scripts (and the CI
    // smoke job) can parse the port when `--addr` used port 0.
    println!("tce-serve listening on {}", server.local_addr());
    println!(
        "  {} workers, queue {}, timeout {:?}",
        cfg.workers, cfg.queue_cap, cfg.timeout
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let handle = server.spawn();
    let final_stats = handle.join();
    println!(
        "tce-serve drained (served {}, errors {}, shed {}, timeouts {}, panics {})",
        final_stats.served,
        final_stats.errors,
        final_stats.shed,
        final_stats.timeouts,
        final_stats.panics
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    match std::env::args().nth(1).as_deref() {
        Some("serve") => return serve_main(),
        Some("calibrate") => return calibrate_main(),
        _ => {}
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_env() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    // Apply --kernel (CPUID-checked), then validate TCE_KERNEL up front
    // so a bad value is a one-line diagnostic, not a panic inside the
    // first contraction.
    if let Err(e) = tce_core::tensor::kernels::set_override(args.kernel) {
        eprintln!("bad --kernel: {e}");
        return ExitCode::FAILURE;
    }
    if args.kernel.is_none() {
        if let Err(e) = tce_core::tensor::kernels::env_requested() {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let src = match std::fs::read_to_string(&args.spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.spec_path);
            return ExitCode::FAILURE;
        }
    };

    if args.trace.is_some() {
        tce_trace::reset();
        tce_trace::set_enabled(true);
    }

    // Resolve the calibration profile: the `--calibration` flag wins, then
    // `TCE_CALIBRATION` (already validated by `validate_env`).  Rates are
    // taken for the kernel variant that will actually run.
    let profile = match &args.calibration {
        Some(path) => match tce_core::calib::Profile::load(path) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("bad --calibration `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match tce_core::calib::calibration_env_requested() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let rates = profile
        .as_ref()
        .map(|p| p.rates(tce_core::tensor::kernels::active().name()));

    let cfg = SynthesisConfig {
        memory_limit: args.memory_limit,
        cache_elements: args.cache,
        hierarchy: MemoryHierarchy::cache_and_disk(args.cache.unwrap_or(64 * 1024), 1 << 30),
        machine: args.grid.clone().map(|dims| Machine {
            grid: ProcessorGrid::new(dims),
            word_cost: args.word_cost,
        }),
        calibration: rates.clone(),
    };
    let syn = match synthesize(&src, &cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    for plan in &syn.plans {
        println!("{}", plan.report(&syn.program.space, &syn.program));
    }

    if args.execute {
        // Bind deterministic inputs and integrals via the same helpers
        // `tce serve` uses, so served answers diff clean against this
        // one-shot path.
        let owned = tce_core::serve::bind_random_inputs(&syn, args.seed);
        let inputs: HashMap<_, _> = owned.iter().map(|(id, t)| (*id, t)).collect();
        let funcs = tce_core::serve::bind_functions(&syn, args.seed);

        let opts = match args.threads {
            Some(t) => ExecOptions::with_threads(t),
            None => ExecOptions::default(),
        }
        .with_schedule(args.schedule);
        println!(
            "== execution (seed {}, {} thread{}, {} schedule) ==",
            args.seed,
            opts.threads,
            if opts.threads == 1 { "" } else { "s" },
            opts.schedule
        );
        // Hidden test hook: `TCE_FAULT_INJECT=comm|liveset` perturbs the
        // *measured* side of a conformance comparison so the MISMATCH exit
        // paths below can be exercised end-to-end (tests/cli.rs).
        let fault = std::env::var("TCE_FAULT_INJECT").ok();
        let exec_started = std::time::Instant::now();
        let results = if args.distributed {
            let mut summary = match syn.execute_distributed_opts(&inputs, &funcs, &opts) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("execution failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if fault.as_deref() == Some("comm") {
                summary.moved_elements += 1;
            }
            println!(
                "  distributed over grid {:?}: {} redistribution{}",
                syn.machine
                    .as_ref()
                    .map(|m| m.grid.dims().to_vec())
                    .unwrap_or_default(),
                summary.redistributions,
                if summary.redistributions == 1 {
                    ""
                } else {
                    "s"
                }
            );
            println!(
                "  redistribution elements: measured {} / modeled {}{}",
                summary.moved_elements,
                summary.predicted_move_elements,
                if summary.moved_elements == summary.predicted_move_elements {
                    " (exact)"
                } else {
                    " (MISMATCH)"
                }
            );
            println!(
                "  reduction words: measured {} / modeled {}{}",
                summary.reduce_words,
                summary.predicted_reduce_words,
                if summary.reduce_words == summary.predicted_reduce_words {
                    " (exact)"
                } else {
                    " (MISMATCH)"
                }
            );
            println!("  busiest rank: {} flops", summary.max_rank_flops());
            if summary.moved_elements != summary.predicted_move_elements
                || summary.reduce_words != summary.predicted_reduce_words
            {
                eprintln!("measured communication diverged from the cost model");
                return ExitCode::FAILURE;
            }
            summary.outputs
        } else if args.fused {
            let mut summary = match syn.execute_fused_opts(&inputs, &funcs, &opts) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("execution failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if fault.as_deref() == Some("liveset") {
                summary.peak_live_elements += 1;
                if let Some(term) = summary.per_term.first_mut() {
                    term.peak_live_elements += 1;
                }
            }
            println!(
                "  peak intermediate live-set: measured {} / modeled {}{}",
                summary.peak_live_elements,
                summary.modeled_elements,
                if summary.peak_matches_model() {
                    " (exact)"
                } else {
                    " (MISMATCH)"
                }
            );
            println!(
                "  sliced contractions: {}, integral evaluations: {}",
                summary.sliced_contractions, summary.func_evals
            );
            if !summary.peak_matches_model() {
                eprintln!("measured peak live-set diverged from the memmin model");
                return ExitCode::FAILURE;
            }
            summary.outputs
        } else {
            match syn.execute_opts(&inputs, &funcs, &opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("execution failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        };
        // Close the calibration loop: price the synthesized plans with the
        // measured rates and report predicted vs. measured wall time (also
        // recorded as `calib.*` trace counters for `--trace` reports).
        if let Some(rates) = &rates {
            let measured_ns = exec_started.elapsed().as_nanos() as f64;
            let predicted_ns = syn.predicted_exec_ns(rates);
            tce_core::record_prediction(predicted_ns, measured_ns);
            println!(
                "  calibration: predicted {:.3} ms / measured {:.3} ms (ratio {:.2})",
                predicted_ns / 1e6,
                measured_ns / 1e6,
                predicted_ns / measured_ns.max(1.0)
            );
        }
        println!("{}", tce_core::serve::format_results(&syn, &results));
    }

    if let Some(path) = &args.trace {
        tce_trace::set_enabled(false);
        let trace = tce_trace::take();
        if let Err(e) = std::fs::write(path, trace.to_chrome_json()) {
            eprintln!("cannot write trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("{}", trace.report());
        println!("trace written to {path}");
    }
    ExitCode::SUCCESS
}
