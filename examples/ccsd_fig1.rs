//! The paper's §2 running example (Fig. 1), end to end.
//!
//! `S_abij = Σ_cdefkl A_acik · B_befl · C_dfjk · D_cdel`
//!
//! * direct translation: ten nested loops, `4·N¹⁰` operations;
//! * algebraic transformation finds the B,D→C→A sequence at `6·N⁶`;
//! * memory minimization fuses T1 to a scalar and T2 to a 2-D array;
//! * the fused program is executed and checked against the reference.
//!
//! ```sh
//! cargo run --release --example ccsd_fig1
//! ```

use std::collections::HashMap;
use tce_core::loops::{memory_report, op_counts, pretty};
use tce_core::tensor::Tensor;
use tce_core::{synthesize, SynthesisConfig};

const N: usize = 8;

fn main() {
    let src = format!(
        "
        range N = {N};
        index a, b, c, d, e, f, i, j, k, l : N;
        tensor A(N, N, N, N);
        tensor B(N, N, N, N);
        tensor C(N, N, N, N);
        tensor D(N, N, N, N);
        tensor S(N, N, N, N);
        S[a,b,i,j] = sum[c,d,e,f,k,l] A[a,c,i,k] * B[b,e,f,l] * C[d,f,j,k] * D[c,d,e,l];
    "
    );
    let syn = synthesize(&src, &SynthesisConfig::default()).expect("synthesis failed");
    let plan = &syn.plans[0];
    let space = &syn.program.space;

    println!("== Fig. 1(a): formula sequence ==");
    print!(
        "{}",
        plan.tree
            .formula_sequence(space, "S", &|t| syn.program.tensors.get(t).name.clone())
    );

    println!("\n== operation counts (paper §2) ==");
    println!("direct:     {} = 4·N^10 at N = {N}", plan.direct_ops);
    println!(
        "op-minimal: {} = {} at N = {N}",
        plan.tree_ops,
        plan.tree_ops_poly.display(space)
    );

    println!("\n== Fig. 1(c): memory-reduced (fused) implementation ==");
    print!("{}", pretty(&plan.built.program));
    let mem = memory_report(&plan.built.program, space);
    println!("\nper-array storage (elements):");
    for (name, elems, kind) in &mem.arrays {
        println!("  {name:>4}: {elems:>8}  ({kind:?})");
    }
    println!(
        "temporaries total: {} elements (unfused would need {}: two full N^4 arrays)",
        plan.memmin.memory,
        2 * (N as u128).pow(4)
    );

    // Execute and verify.
    let shape = [N; 4];
    let ta = Tensor::random(&shape, 1);
    let tb = Tensor::random(&shape, 2);
    let tc = Tensor::random(&shape, 3);
    let td = Tensor::random(&shape, 4);
    let mut inputs = HashMap::new();
    for (nm, t) in [("A", &ta), ("B", &tb), ("C", &tc), ("D", &td)] {
        inputs.insert(syn.program.tensors.by_name(nm).unwrap(), t);
    }
    let got = plan.execute(space, &inputs, &HashMap::new()).unwrap();
    let ops = op_counts(&plan.built.program, space);
    println!(
        "\nexecuted fused program: {} flops (model said {})",
        ops.total(),
        plan.tree_ops
    );

    // Reference via the unfused operator-tree executor (GEMM path).
    let expect = tce_core::exec::execute_tree(
        &plan.tree,
        space,
        &inputs,
        &HashMap::new(),
        tce_core::par::default_threads(),
    )
    .unwrap();
    let diff = got.max_abs_diff(&expect);
    println!("verification: max |fused - unfused| = {diff:.3e}");
    assert!(diff < 1e-8);
    println!("OK");
}
