//! Multi-threaded stress of the size-class buffer pool: N threads
//! round-tripping tensor buffers through acquire/release against a tight
//! element cap must not deadlock, must keep every counter consistent, and
//! must never retain more elements than the cap allows.
//!
//! The pool is process-global, so this file holds exactly one test —
//! parallel tests in the same binary would race on the capacity.

use tce_core::tensor::{
    bufpool_len, bufpool_retained_elements, bufpool_shard_stats, bufpool_stats,
    set_bufpool_capacity, Tensor,
};

#[test]
fn tight_cap_under_contention_keeps_counters_and_bound() {
    // Cap at 4096 elements: the mixed working set below wants far more,
    // so threads constantly race hits, misses, and cap-overflow evictions.
    let old_cap = set_bufpool_capacity(4096);
    let before = bufpool_stats();
    let retained_before = bufpool_retained_elements();

    let threads = 8;
    let rounds = 200;
    // Mixed shapes across several size classes (16, 64, 512, 1024, 4096
    // element buffers) so multiple shards are in play.
    let shapes: &[&[usize]] = &[&[4, 4], &[8, 8], &[8, 8, 8], &[32, 32], &[16, 16, 16]];
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                for r in 0..rounds {
                    let shape = shapes[(t + r) % shapes.len()];
                    let mut tensor = Tensor::zeros_pooled(shape);
                    // Recycled buffers must come back zeroed no matter how
                    // the previous owner dirtied them.
                    assert!(
                        tensor.data().iter().all(|&x| x == 0.0),
                        "pooled buffer not zeroed"
                    );
                    tensor.data_mut().iter_mut().for_each(|x| *x = t as f64);
                    tensor.recycle();
                }
            });
        }
    });

    // Every acquire was counted exactly once, as a hit or a miss.
    let after = bufpool_stats();
    let (d_hits, d_misses) = (after.0 - before.0, after.1 - before.1);
    assert_eq!(
        d_hits + d_misses,
        (threads * rounds) as u64,
        "every concurrent acquire must be counted exactly once"
    );
    assert!(d_hits > 0, "a hot loop over 5 shapes never hit the pool");
    // The cap is a hard bound on what the pool retains.
    assert!(
        bufpool_retained_elements() <= 4096,
        "retained {} elements > cap 4096",
        bufpool_retained_elements()
    );
    // Per-shard counters sum to the globals.
    let sums = bufpool_shard_stats()
        .iter()
        .fold((0, 0, 0), |a, s| (a.0 + s.0, a.1 + s.1, a.2 + s.2));
    assert_eq!(sums, after, "shard counters disagree with the global sums");

    // Shrinking the cap to 0 drops everything retained and disables
    // pooling: acquires become counted misses, releases plain drops.
    set_bufpool_capacity(0);
    assert_eq!(bufpool_retained_elements(), 0);
    assert_eq!(bufpool_len(), 0);
    let before_disabled = bufpool_stats();
    let t = Tensor::zeros_pooled(&[8, 8]);
    t.recycle();
    let after_disabled = bufpool_stats();
    assert_eq!(after_disabled.0, before_disabled.0, "disabled pool hit");
    assert_eq!(
        after_disabled.1,
        before_disabled.1 + 1,
        "disabled acquire must still count as a miss"
    );
    assert_eq!(
        after_disabled.2, before_disabled.2,
        "a drop with pooling disabled is not an eviction"
    );
    assert_eq!(bufpool_retained_elements(), 0);

    // Re-enable and verify the pool serves again after the reset.
    set_bufpool_capacity(4096);
    let a = Tensor::zeros_pooled(&[8, 8]);
    a.recycle();
    let before_hit = bufpool_stats();
    let b = Tensor::zeros_pooled(&[8, 8]);
    let after_hit = bufpool_stats();
    assert_eq!(after_hit.0, before_hit.0 + 1, "recycled buffer not reused");
    b.recycle();

    set_bufpool_capacity(old_cap);
    let _ = retained_before;
}
