//! Operator trees: sequences of binary tensor contractions.
//!
//! The algebraic-transformation module rewrites a sum-of-products expression
//! into a *formula sequence* (paper Fig. 1(a)) — a binary tree whose leaves
//! are input tensors or primitive function evaluations and whose internal
//! nodes each multiply two operands and sum over the indices that appear in
//! the operands but not in the node's result.  All later optimization
//! stages (fusion, space-time trade-off, locality, distribution) operate on
//! this tree.

use crate::index::{IndexSet, IndexSpace, IndexVar};
use crate::poly::CostPoly;
use crate::tensor::TensorId;
use std::fmt;

/// Identifier of a node within one [`OpTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// What a leaf node evaluates to.
#[derive(Debug, Clone, PartialEq)]
pub enum Leaf {
    /// A stored input tensor (already materialized; zero production cost).
    Input {
        /// The declared tensor.
        tensor: TensorId,
        /// Dimension-order index variables of the reference.
        indices: Vec<IndexVar>,
    },
    /// An expensive primitive function evaluated pointwise over its index
    /// space (the paper's `f1`, `f2` integral evaluations).
    Func {
        /// Function name.
        name: String,
        /// Argument index variables.
        indices: Vec<IndexVar>,
        /// Arithmetic cost of a single evaluation (`C_i`).
        cost_per_eval: u64,
    },
    /// The scalar multiplicative identity.  Used to express pure reductions
    /// (`Σ_i A[i]` has the tree `Contract(A, One)`) so contraction nodes can
    /// stay binary.
    One,
}

/// Node payload.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Leaf: input tensor or function evaluation.
    Leaf(Leaf),
    /// Binary contraction: multiply `left` and `right` elementwise over
    /// their shared iteration space and sum over all indices not in this
    /// node's result set.
    Contract {
        /// Left operand.
        left: NodeId,
        /// Right operand.
        right: NodeId,
    },
}

/// One node of an operator tree.
#[derive(Debug, Clone, PartialEq)]
pub struct OpNode {
    /// Payload.
    pub kind: OpKind,
    /// Result index set (the dimensions of the value this node produces;
    /// empty for scalars).
    pub indices: IndexSet,
}

/// An operator tree stored as an arena; `root` is the final result.
#[derive(Debug, Clone, PartialEq)]
pub struct OpTree {
    /// Arena of nodes; children always precede parents.
    pub nodes: Vec<OpNode>,
    /// The root node (the statement's LHS value).
    pub root: NodeId,
}

impl OpTree {
    /// Create an empty tree (root is patched by the builder methods).
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            root: NodeId(0),
        }
    }

    /// Add an input-tensor leaf.
    pub fn leaf_input(&mut self, tensor: TensorId, indices: Vec<IndexVar>) -> NodeId {
        let set = IndexSet::from_vars(indices.iter().copied());
        self.push(OpNode {
            kind: OpKind::Leaf(Leaf::Input { tensor, indices }),
            indices: set,
        })
    }

    /// Add a unit (scalar one) leaf.
    pub fn leaf_one(&mut self) -> NodeId {
        self.push(OpNode {
            kind: OpKind::Leaf(Leaf::One),
            indices: IndexSet::EMPTY,
        })
    }

    /// Add a function-evaluation leaf.
    pub fn leaf_func(&mut self, name: &str, indices: Vec<IndexVar>, cost_per_eval: u64) -> NodeId {
        let set = IndexSet::from_vars(indices.iter().copied());
        self.push(OpNode {
            kind: OpKind::Leaf(Leaf::Func {
                name: name.to_string(),
                indices,
                cost_per_eval,
            }),
            indices: set,
        })
    }

    /// Add a contraction node producing `result` indices and make it the
    /// current root.
    ///
    /// # Panics
    /// Panics if `result` is not a subset of the operands' combined indices.
    pub fn contract(&mut self, left: NodeId, right: NodeId, result: IndexSet) -> NodeId {
        let combined = self.node(left).indices.union(self.node(right).indices);
        assert!(
            result.is_subset(combined),
            "contraction result {result:?} not a subset of operand indices {combined:?}"
        );
        let id = self.push(OpNode {
            kind: OpKind::Contract { left, right },
            indices: result,
        });
        self.root = id;
        id
    }

    fn push(&mut self, node: OpNode) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.root = id;
        id
    }

    /// Access a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &OpNode {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Children of a node (empty for leaves).
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        match self.node(id).kind {
            OpKind::Leaf(_) => Vec::new(),
            OpKind::Contract { left, right } => vec![left, right],
        }
    }

    /// The summation indices of a node: `(I(l) ∪ I(r)) − I(node)`.
    /// Empty for leaves.
    pub fn sum_indices(&self, id: NodeId) -> IndexSet {
        match self.node(id).kind {
            OpKind::Leaf(_) => IndexSet::EMPTY,
            OpKind::Contract { left, right } => self
                .node(left)
                .indices
                .union(self.node(right).indices)
                .minus(self.node(id).indices),
        }
    }

    /// The full loop-index set of the node's computation: result indices ∪
    /// summation indices (for leaves, the leaf's own indices).  This is the
    /// set of vertices the node contributes to the fusion graph.
    pub fn loop_indices(&self, id: NodeId) -> IndexSet {
        self.node(id).indices.union(self.sum_indices(id))
    }

    /// Post-order traversal from the root (children before parents).
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                out.push(id);
            } else {
                stack.push((id, true));
                // Reverse push order so the traversal visits left before
                // right.
                for c in self.children(id).into_iter().rev() {
                    stack.push((c, false));
                }
            }
        }
        out
    }

    /// Parent of each node reachable from the root (`None` for the root).
    pub fn parents(&self) -> Vec<Option<NodeId>> {
        let mut parent = vec![None; self.nodes.len()];
        for id in self.postorder() {
            for c in self.children(id) {
                parent[c.0 as usize] = Some(id);
            }
        }
        parent
    }

    /// Internal (contraction) nodes, in post order.
    pub fn internal_postorder(&self) -> Vec<NodeId> {
        self.postorder()
            .into_iter()
            .filter(|&id| matches!(self.node(id).kind, OpKind::Contract { .. }))
            .collect()
    }

    /// Structural validation: children precede parents, result sets are
    /// subsets of operand unions, every node is reachable exactly once from
    /// the root (it is a tree, not a DAG).
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty tree".into());
        }
        let mut visits = vec![0usize; self.nodes.len()];
        for id in self.postorder() {
            visits[id.0 as usize] += 1;
            if let OpKind::Contract { left, right } = self.node(id).kind {
                if left.0 >= id.0 || right.0 >= id.0 {
                    return Err("child does not precede parent".into());
                }
                let combined = self.node(left).indices.union(self.node(right).indices);
                if !self.node(id).indices.is_subset(combined) {
                    return Err("result indices not a subset of operand indices".into());
                }
            }
        }
        if visits.iter().any(|&v| v > 1) {
            return Err("node reachable via two paths (DAG, not a tree)".into());
        }
        Ok(())
    }

    /// Arithmetic operation count of evaluating the whole tree, in flops:
    /// every contraction node performs one multiply and one add per point of
    /// its combined operand iteration space; every `Func` leaf performs
    /// `cost_per_eval` flops per point of its index space.
    pub fn total_ops(&self, space: &IndexSpace) -> u128 {
        self.postorder()
            .into_iter()
            .map(|id| self.node_ops(id, space))
            .fold(0u128, u128::saturating_add)
    }

    /// Per-node operation count (see [`OpTree::total_ops`]).
    pub fn node_ops(&self, id: NodeId, space: &IndexSpace) -> u128 {
        match &self.node(id).kind {
            OpKind::Leaf(Leaf::Input { .. }) | OpKind::Leaf(Leaf::One) => 0,
            OpKind::Leaf(Leaf::Func { cost_per_eval, .. }) => space
                .iteration_points(self.node(id).indices)
                .saturating_mul(*cost_per_eval as u128),
            OpKind::Contract { left, right } => {
                let iter = self.node(*left).indices.union(self.node(*right).indices);
                space.iteration_points(iter).saturating_mul(2)
            }
        }
    }

    /// Symbolic operation count as a polynomial in the range extents.
    pub fn total_ops_poly(&self, space: &IndexSpace) -> CostPoly {
        let mut total = CostPoly::zero();
        for id in self.postorder() {
            total.add_assign(&self.node_ops_poly(id, space));
        }
        total
    }

    /// Per-node symbolic operation count.
    pub fn node_ops_poly(&self, id: NodeId, space: &IndexSpace) -> CostPoly {
        match &self.node(id).kind {
            OpKind::Leaf(Leaf::Input { .. }) | OpKind::Leaf(Leaf::One) => CostPoly::zero(),
            OpKind::Leaf(Leaf::Func { cost_per_eval, .. }) => {
                CostPoly::extent_product(self.node(id).indices, space).scale(*cost_per_eval as f64)
            }
            OpKind::Contract { left, right } => {
                let iter = self.node(*left).indices.union(self.node(*right).indices);
                CostPoly::extent_product(iter, space).scale(2.0)
            }
        }
    }

    /// Total elements of all intermediate (non-root, non-leaf) arrays if
    /// stored unfused — the baseline the memory-minimization stage improves.
    pub fn unfused_intermediate_elements(&self, space: &IndexSpace) -> u128 {
        self.internal_postorder()
            .into_iter()
            .filter(|&id| id != self.root)
            .map(|id| space.iteration_points(self.node(id).indices))
            .fold(0u128, u128::saturating_add)
    }

    /// Render as a formula sequence like paper Fig. 1(a):
    /// ```text
    /// T1[b,c,d,f] = sum[e,l] B * D
    /// T2[b,c,j,k] = sum[d,f] T1 * C
    /// S[a,b,i,j]  = sum[c,k] T2 * A
    /// ```
    /// Leaf names come from `leaf_name`; intermediates are `T1, T2, …` in
    /// post order and the root is `result_name`.
    pub fn formula_sequence(
        &self,
        space: &IndexSpace,
        result_name: &str,
        leaf_name: &dyn Fn(TensorId) -> String,
    ) -> String {
        let mut names: Vec<String> = vec![String::new(); self.nodes.len()];
        let mut out = String::new();
        let mut counter = 0usize;
        for id in self.postorder() {
            match &self.node(id).kind {
                OpKind::Leaf(Leaf::Input { tensor, .. }) => {
                    names[id.0 as usize] = leaf_name(*tensor);
                }
                OpKind::Leaf(Leaf::Func { name, .. }) => {
                    names[id.0 as usize] = name.clone();
                }
                OpKind::Leaf(Leaf::One) => {
                    names[id.0 as usize] = "1".to_string();
                }
                OpKind::Contract { left, right } => {
                    let name = if id == self.root {
                        result_name.to_string()
                    } else {
                        counter += 1;
                        format!("T{counter}")
                    };
                    use fmt::Write;
                    let sums = self.sum_indices(id);
                    let _ = writeln!(
                        out,
                        "{}[{}] = {}{} * {}",
                        name,
                        space.set_to_string(self.node(id).indices),
                        if sums.is_empty() {
                            String::new()
                        } else {
                            format!("sum[{}] ", space.set_to_string(sums))
                        },
                        names[left.0 as usize],
                        names[right.0 as usize],
                    );
                    names[id.0 as usize] = name;
                }
            }
        }
        out
    }
}

impl Default for OpTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexSpace;
    use crate::tensor::{TensorDecl, TensorTable};

    /// The operation-reduced BDCA tree of paper §2 / Fig. 1(a):
    /// `T1_bcdf = Σ_el B·D ; T2_bcjk = Σ_df T1·C ; S_abij = Σ_ck T2·A`.
    pub(crate) fn fig1_tree() -> (IndexSpace, TensorTable, OpTree) {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 10);
        let vs = space.add_vars("a b c d e f i j k l", n);
        let (a, b, c, d, e, f, i, j, k, l) = (
            vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6], vs[7], vs[8], vs[9],
        );
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n; 4]));
        let tb = tensors.add(TensorDecl::dense("B", vec![n; 4]));
        let tc = tensors.add(TensorDecl::dense("C", vec![n; 4]));
        let td = tensors.add(TensorDecl::dense("D", vec![n; 4]));

        let mut tree = OpTree::new();
        let lb = tree.leaf_input(tb, vec![b, e, f, l]);
        let ld = tree.leaf_input(td, vec![c, d, e, l]);
        let t1 = tree.contract(lb, ld, IndexSet::from_vars([b, c, d, f]));
        let lc = tree.leaf_input(tc, vec![d, f, j, k]);
        let t2 = tree.contract(t1, lc, IndexSet::from_vars([b, c, j, k]));
        let la = tree.leaf_input(ta, vec![a, c, i, k]);
        let _s = tree.contract(t2, la, IndexSet::from_vars([a, b, i, j]));
        (space, tensors, tree)
    }

    #[test]
    fn validates() {
        let (_, _, tree) = fig1_tree();
        tree.validate().unwrap();
        assert_eq!(tree.len(), 7);
        assert_eq!(tree.internal_postorder().len(), 3);
    }

    #[test]
    fn sum_indices_per_node() {
        let (space, _, tree) = fig1_tree();
        let internals = tree.internal_postorder();
        // T1 sums over e,l; T2 over d,f; S over c,k.
        assert_eq!(space.set_to_string(tree.sum_indices(internals[0])), "e,l");
        assert_eq!(space.set_to_string(tree.sum_indices(internals[1])), "d,f");
        assert_eq!(space.set_to_string(tree.sum_indices(internals[2])), "c,k");
    }

    #[test]
    fn op_minimal_cost_is_6_n6() {
        // Paper §2: "This form only requires 6 × N^6 operations."
        let (space, _, tree) = fig1_tree();
        assert_eq!(tree.total_ops(&space), 6 * 10u128.pow(6));
        let poly = tree.total_ops_poly(&space);
        assert_eq!(format!("{}", poly.display(&space)), "6·N^6");
    }

    #[test]
    fn loop_indices_cover_result_and_sums() {
        let (space, _, tree) = fig1_tree();
        let t1 = tree.internal_postorder()[0];
        assert_eq!(space.set_to_string(tree.loop_indices(t1)), "b,c,d,e,f,l");
    }

    #[test]
    fn unfused_intermediates() {
        let (space, _, tree) = fig1_tree();
        // T1 is N^4, T2 is N^4; S (root) not counted.
        assert_eq!(
            tree.unfused_intermediate_elements(&space),
            2 * 10u128.pow(4)
        );
    }

    #[test]
    fn postorder_children_first() {
        let (_, _, tree) = fig1_tree();
        let order = tree.postorder();
        assert_eq!(order.len(), tree.len());
        let pos: Vec<usize> = {
            let mut p = vec![0; tree.len()];
            for (i, id) in order.iter().enumerate() {
                p[id.0 as usize] = i;
            }
            p
        };
        for id in tree.postorder() {
            for c in tree.children(id) {
                assert!(pos[c.0 as usize] < pos[id.0 as usize]);
            }
        }
        assert_eq!(*order.last().unwrap(), tree.root);
    }

    #[test]
    fn parents_map() {
        let (_, _, tree) = fig1_tree();
        let parents = tree.parents();
        assert_eq!(parents[tree.root.0 as usize], None);
        let mut child_count = 0;
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                assert!(tree.children(*p).contains(&NodeId(i as u32)));
                child_count += 1;
            }
        }
        assert_eq!(child_count, tree.len() - 1);
    }

    #[test]
    fn formula_sequence_matches_fig1a() {
        let (space, tensors, tree) = fig1_tree();
        let text = tree.formula_sequence(&space, "S", &|t| tensors.get(t).name.clone());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "T1[b,c,d,f] = sum[e,l] B * D");
        assert_eq!(lines[1], "T2[b,c,j,k] = sum[d,f] T1 * C");
        assert_eq!(lines[2], "S[a,b,i,j] = sum[c,k] T2 * A");
    }

    #[test]
    fn func_leaf_cost() {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 10);
        let vs = space.add_vars("x y", n);
        let mut tree = OpTree::new();
        let f = tree.leaf_func("f1", vs.clone(), 1000);
        assert_eq!(tree.node_ops(f, &space), 1000 * 100);
        let p = tree.node_ops_poly(f, &space);
        assert_eq!(format!("{}", p.display(&space)), "1000·N^2");
    }

    #[test]
    #[should_panic(expected = "not a subset")]
    fn contract_rejects_bad_result() {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 4);
        let vs = space.add_vars("x y z", n);
        let mut tensors = TensorTable::new();
        let t = tensors.add(TensorDecl::dense("A", vec![n, n]));
        let mut tree = OpTree::new();
        let l1 = tree.leaf_input(t, vec![vs[0], vs[1]]);
        let l2 = tree.leaf_input(t, vec![vs[0], vs[1]]);
        tree.contract(l1, l2, IndexSet::from_vars([vs[2]]));
    }

    #[test]
    fn validate_rejects_shared_node() {
        // Manually build a DAG: one leaf used by two parents.
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 4);
        let vs = space.add_vars("x y", n);
        let _ = &space;
        let mut tensors = TensorTable::new();
        let t = tensors.add(TensorDecl::dense("A", vec![n, n]));
        let mut tree = OpTree::new();
        let l = tree.leaf_input(t, vec![vs[0], vs[1]]);
        let c1 = tree.contract(l, l, IndexSet::from_vars([vs[0]]));
        let _c2 = tree.contract(c1, l, IndexSet::EMPTY);
        assert!(tree.validate().is_err());
    }
}
