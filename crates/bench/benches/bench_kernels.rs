//! Micro-benchmark: the execution substrate — naive vs blocked-GEMM vs
//! packed-GETT contraction kernels, blocked vs naive permutes, and the
//! loop-program interpreter vs the array-at-a-time tree executor.

use std::collections::HashMap;
use tce_bench::harness::{black_box, BenchmarkId, Criterion};
use tce_bench::{criterion_group, criterion_main};
use tce_core::exec::{parallel_contract, Interpreter, NoSink};
use tce_core::ir::{IndexSpace, IndexVar};
use tce_core::scenarios::section2_source;
use tce_core::tensor::{contract_gemm, contract_gett, contract_naive, BinaryContraction, Tensor};
use tce_core::{synthesize, SynthesisConfig};

fn setup(n: usize) -> (IndexSpace, [IndexVar; 3]) {
    let mut sp = IndexSpace::new();
    let r = sp.add_range("N", n);
    let i = sp.add_var("i", r);
    let j = sp.add_var("j", r);
    let k = sp.add_var("k", r);
    (sp, [i, j, k])
}

fn bench(c: &mut Criterion) {
    let n = 96usize;
    let (sp, [i, j, k]) = setup(n);
    let spec = BinaryContraction {
        a: vec![i, k],
        b: vec![k, j],
        out: vec![i, j],
    };
    let a = Tensor::random(&[n, n], 1);
    let b = Tensor::random(&[n, n], 2);

    let mut g = c.benchmark_group("contract_kernels_96");
    g.sample_size(20);
    g.bench_function("naive", |bch| {
        bch.iter(|| contract_naive(black_box(&spec), &sp, &a, &b))
    });
    g.bench_function("gemm_blocked", |bch| {
        bch.iter(|| contract_gemm(black_box(&spec), &sp, &a, &b))
    });
    for threads in [2usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |bch, &t| bch.iter(|| parallel_contract(black_box(&spec), &sp, &a, &b, t)),
        );
    }
    g.finish();

    // Packed GETT vs the scalar blocked-GEMM path, at a size where the
    // register blocking and panel packing pay off.
    let n2 = 192usize;
    let (sp2, [i2, j2, k2]) = setup(n2);
    let spec2 = BinaryContraction {
        a: vec![i2, k2],
        b: vec![k2, j2],
        out: vec![i2, j2],
    };
    let a2 = Tensor::random(&[n2, n2], 3);
    let b2 = Tensor::random(&[n2, n2], 4);
    let mut gp = c.benchmark_group("gemm_packed_vs_scalar_192");
    gp.sample_size(10);
    gp.bench_function("scalar_blocked", |bch| {
        bch.iter(|| contract_gemm(black_box(&spec2), &sp2, &a2, &b2))
    });
    for threads in [1usize, 2, 4] {
        gp.bench_with_input(
            BenchmarkId::new("gett_packed", threads),
            &threads,
            |bch, &t| bch.iter(|| contract_gett(black_box(&spec2), &sp2, &a2, &b2, t)),
        );
    }
    gp.finish();

    // Blocked (cache-oblivious) permute vs a naive odometer walk.
    let pt = Tensor::random(&[96, 96, 96], 5);
    let perm = [2usize, 0, 1];
    let naive_permute = |t: &Tensor| -> Tensor {
        let new_shape: Vec<usize> = perm.iter().map(|&p| t.shape()[p]).collect();
        Tensor::from_fn(&new_shape, |idx| {
            let mut src = [0usize; 3];
            for (d, &p) in perm.iter().enumerate() {
                src[p] = idx[d];
            }
            t.get(&src)
        })
    };
    let mut gt = c.benchmark_group("permute_96x96x96");
    gt.sample_size(10);
    gt.bench_function("naive_odometer", |bch| {
        bch.iter(|| naive_permute(black_box(&pt)))
    });
    for threads in [1usize, 2, 4] {
        gt.bench_with_input(BenchmarkId::new("blocked", threads), &threads, |bch, &t| {
            bch.iter(|| black_box(&pt).permute_with_threads(&perm, t))
        });
    }
    gt.finish();

    // Interpreter vs tree executor on the synthesized §2 program.
    let syn = synthesize(&section2_source(6), &SynthesisConfig::default()).unwrap();
    let plan = &syn.plans[0];
    let space = &syn.program.space;
    let shape = [6usize; 4];
    let data: Vec<Tensor> = (0..4).map(|s| Tensor::random(&shape, s as u64)).collect();
    let mut inputs = HashMap::new();
    for (q, nm) in ["A", "B", "C", "D"].iter().enumerate() {
        inputs.insert(syn.program.tensors.by_name(nm).unwrap(), &data[q]);
    }
    let mut g2 = c.benchmark_group("section2_execution");
    g2.sample_size(20);
    g2.bench_function("interpreter_fused", |bch| {
        bch.iter(|| {
            let mut it =
                Interpreter::new(&plan.built.program, space, &inputs, &HashMap::new()).unwrap();
            it.run(&mut NoSink);
            black_box(it.stats.contraction_flops)
        })
    });
    g2.bench_function("tree_executor_gemm", |bch| {
        bch.iter(|| {
            black_box(tce_core::exec::execute_tree(
                &plan.tree,
                space,
                &inputs,
                &HashMap::new(),
                1,
            ))
        })
    });
    g2.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
