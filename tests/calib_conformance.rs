//! Predicted-vs-measured conformance of the calibration cost model, plus
//! deterministic calibrated plan-flip coverage.
//!
//! The calibration loop is only useful if the time-based cost model it
//! feeds stays tethered to reality.  These tests calibrate live with a
//! tiny probe budget, execute the paper's §2 and A3A examples, and assert
//! the model's predicted wall time agrees with the measured wall time
//! within a *generous* documented band (see [`BAND`]): the predictor is a
//! first-order model — per-class GEMM rate × flops, one pass of copy
//! traffic and one pool dispatch per contraction — so on these small
//! conformance examples fixed per-call overheads can dominate either
//! side.  The band guards against the model being wrong by *orders of
//! magnitude* (a unit mix-up, a rate inverted, a probe measuring zero),
//! not against micro-benchmark noise.
//!
//! The plan-flip tests use a hand-built, deliberately skewed rate table —
//! no live measurement — so they are fully deterministic: a calibrated
//! pipeline must make at least one different plan choice than the unit
//! cost model, and an uncalibrated pipeline must keep making exactly the
//! same choices as before.

use std::collections::HashMap;
use std::time::Instant;
use tce_core::calib::probe::{run_probes, ProbeOptions};
use tce_core::calib::{CostRates, LevelRate};
use tce_core::scenarios::section2_source;
use tce_core::serve::{bind_functions, bind_random_inputs};
use tce_core::{synthesize, ExecOptions, SynthesisConfig};

/// Documented conformance band (also described in DESIGN.md §14): the
/// predicted/measured ratio must fall within `[1/BAND, BAND]`.  Two
/// orders of magnitude is deliberately generous — it is the "is the model
/// in the right universe" check, not a performance regression gate.
const BAND: f64 = 100.0;

/// These tests are registered from `crates/core`, so the examples live
/// two levels up.
fn spec(name: &str) -> String {
    let path = format!("{}/../../examples/specs/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Calibrate live with a small probe budget and return the rates for the
/// kernel variant that will actually execute.
fn live_rates() -> CostRates {
    let profile = run_probes(&ProbeOptions {
        budget_ms: 80,
        ..ProbeOptions::default()
    });
    profile.rates(tce_core::tensor::kernels::active().name())
}

/// Compile `src` calibrated, execute it (one warm-up, one measured run),
/// and assert predicted vs. measured wall time within [`BAND`].
fn assert_conformance(src: &str, what: &str) {
    let rates = live_rates();
    let cfg = SynthesisConfig {
        calibration: Some(rates.clone()),
        ..SynthesisConfig::default()
    };
    let syn = synthesize(src, &cfg).unwrap();
    let owned = bind_random_inputs(&syn, 42);
    let inputs: HashMap<_, _> = owned.iter().map(|(id, t)| (*id, t)).collect();
    let funcs = bind_functions(&syn, 42);
    let opts = ExecOptions::with_threads(1);
    // Warm-up run: plan cache, buffer pool, worker pool.
    syn.execute_opts(&inputs, &funcs, &opts).unwrap();
    let started = Instant::now();
    syn.execute_opts(&inputs, &funcs, &opts).unwrap();
    let measured_ns = started.elapsed().as_nanos() as f64;

    let predicted_ns = syn.predicted_exec_ns(&rates);
    assert!(
        predicted_ns > 0.0 && predicted_ns.is_finite(),
        "{what}: degenerate prediction {predicted_ns}"
    );
    let ratio = predicted_ns / measured_ns.max(1.0);
    assert!(
        (1.0 / BAND..=BAND).contains(&ratio),
        "{what}: predicted {predicted_ns:.0} ns vs measured {measured_ns:.0} ns \
         (ratio {ratio:.4}) outside the documented [{:.3}, {BAND}] band",
        1.0 / BAND
    );
}

#[test]
fn section2_prediction_within_band() {
    assert_conformance(&section2_source(6), "section 2");
}

#[test]
fn a3a_prediction_within_band() {
    assert_conformance(&spec("a3a_energy.tce"), "A3A");
}

#[test]
fn record_prediction_surfaces_in_profile_report() {
    tce_trace::reset();
    tce_trace::set_enabled(true);
    tce_core::record_prediction(3_000_000.0, 2_000_000.0);
    tce_trace::set_enabled(false);
    let report = tce_trace::take().report();
    assert_eq!(report.calib_predicted_ns, 3_000_000);
    assert_eq!(report.calib_measured_ns, 2_000_000);
    assert_eq!(report.calib_ratio_milli, 1500);
    assert!(report.to_string().contains("calibration:"));
}

/// A deliberately skewed fixture rate table: a tiny fast first level and
/// a brutally expensive backing store.  Against the unit cost model's
/// single `cache_elements`-sized cache this shifts where the locality DP
/// puts its tile boundaries.
fn skewed_rates() -> CostRates {
    CostRates {
        flop_ns_small: 1.0,
        flop_ns_medium: 1.0,
        flop_ns_large: 1.0,
        copy_ns: 1.0,
        permute_ns: 1.0,
        levels: vec![
            LevelRate {
                name: "l1".to_string(),
                capacity_elements: 16,
                ns_per_element: 1.0,
            },
            LevelRate {
                name: "mem".to_string(),
                capacity_elements: 1u128 << 40,
                ns_per_element: 1000.0,
            },
        ],
        word_ns: 100.0,
        dispatch_ns: 0.0,
    }
}

#[test]
fn skewed_fixture_profile_flips_a_locality_plan() {
    // A single perfect matmul nest, so the locality stage engages (the
    // §2 example fuses into imperfect nests the tile search skips).
    let src = "
        range N = 16;
        index i, j, k : N;
        tensor A(N, N); tensor B(N, N); tensor S(N, N);
        S[i,j] = sum[k] A[i,k] * B[k,j];
    ";
    let unit_cfg = SynthesisConfig {
        cache_elements: Some(128),
        ..SynthesisConfig::default()
    };
    let calib_cfg = SynthesisConfig {
        cache_elements: Some(128),
        calibration: Some(skewed_rates()),
        ..SynthesisConfig::default()
    };
    let unit = synthesize(src, &unit_cfg).unwrap();
    let calibrated = synthesize(src, &calib_cfg).unwrap();
    assert_eq!(unit.plans.len(), calibrated.plans.len());

    // The skewed rates must flip at least one tiling decision: some nest
    // ends up with different block sizes than the unit cost model chose.
    let mut flipped = false;
    for (u, c) in unit.plans.iter().zip(&calibrated.plans) {
        assert_eq!(u.locality.len(), c.locality.len());
        for (un, cn) in u.locality.iter().zip(&c.locality) {
            if un.blocks != cn.blocks {
                flipped = true;
            }
        }
    }
    assert!(
        flipped,
        "skewed rates produced identical tilings to unit costs"
    );

    // And the flip must not leak into the numerics: both syntheses still
    // compute bitwise-identical results.
    let owned = bind_random_inputs(&unit, 7);
    let inputs: HashMap<_, _> = owned.iter().map(|(id, t)| (*id, t)).collect();
    let funcs = bind_functions(&unit, 7);
    let opts = ExecOptions::with_threads(1);
    let r_unit = unit.execute_opts(&inputs, &funcs, &opts).unwrap();
    let r_cal = calibrated.execute_opts(&inputs, &funcs, &opts).unwrap();
    assert_eq!(r_unit.len(), r_cal.len());
    for (id, t) in &r_unit {
        assert_eq!(t.data(), r_cal[id].data(), "results diverged");
    }
}

#[test]
fn no_profile_keeps_plans_bit_identical() {
    // `calibration: None` must leave every plan choice exactly where the
    // unit cost model put it — the calibrated code paths must not even be
    // reachable.  (The determinism suite locks outputs; this locks the
    // plan shape against the default config explicitly.)
    let src = section2_source(5);
    let base = synthesize(&src, &SynthesisConfig::default()).unwrap();
    let again = synthesize(
        &src,
        &SynthesisConfig {
            calibration: None,
            ..SynthesisConfig::default()
        },
    )
    .unwrap();
    assert_eq!(base.plans.len(), again.plans.len());
    for (a, b) in base.plans.iter().zip(&again.plans) {
        assert_eq!(a.tree_ops, b.tree_ops);
        assert_eq!(a.tree_rank, b.tree_rank);
        assert_eq!(a.memmin.memory, b.memmin.memory);
        assert_eq!(
            a.locality.iter().map(|n| &n.blocks).collect::<Vec<_>>(),
            b.locality.iter().map(|n| &n.blocks).collect::<Vec<_>>()
        );
    }
}
