//! Small deterministic pseudo-random generator.
//!
//! The workspace runs in hermetic environments with no access to external
//! crates, so the randomized tests, benchmark inputs and property checks
//! all draw from this splitmix64-based generator instead of `rand`.  It is
//! seeded explicitly everywhere, so every test failure reproduces exactly.
//!
//! The statistical requirements here are mild — decorrelated tensor fills
//! and shape choices — and splitmix64 passes BigCrush, so one 64-bit state
//! word is plenty.

/// A splitmix64 pseudo-random generator (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

/// One stateless splitmix64 step: hash `x` to a decorrelated 64-bit value.
/// Used to derive independent sub-seeds (per test case, per tensor) from a
/// single campaign seed without sharing generator state.
pub fn split_seed(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seed a property test should run with: the `TCE_TEST_SEED`
/// environment variable (decimal or `0x`-prefixed hex) when set and
/// parseable, otherwise `default`.  Lets any CI failure be reproduced
/// locally with `TCE_TEST_SEED=<seed> cargo test <name>`.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var("TCE_TEST_SEED") {
        Ok(text) => {
            let text = text.trim();
            let parsed =
                if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
                    u64::from_str_radix(hex, 16)
                } else {
                    text.parse()
                };
            parsed.unwrap_or(default)
        }
        Err(_) => default,
    }
}

/// Prints the active seed to stderr if the owning test thread panics, so a
/// failing randomized test always names the seed that reproduces it.
///
/// ```ignore
/// let seed = seed_from_env(0xb001);
/// let _guard = SeedGuard::new("opmin_property", seed);
/// let mut rng = Rng::new(seed);
/// ```
pub struct SeedGuard {
    label: &'static str,
    seed: u64,
}

impl SeedGuard {
    /// Guard announcing `label` and `seed` on panic.
    pub fn new(label: &'static str, seed: u64) -> Self {
        Self { label, seed }
    }
}

impl Drop for SeedGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "note: `{}` failed with seed {:#x} ({}); rerun with TCE_TEST_SEED={}",
                self.label, self.seed, self.seed, self.seed
            );
        }
    }
}

impl Rng {
    /// Generator seeded with `seed`; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        // Mix the seed once so small consecutive seeds (0, 1, 2, …) do not
        // produce visibly correlated first draws.
        let mut rng = Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        };
        let _ = rng.next_u64();
        rng
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from a half-open `usize` range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }

    /// Uniform draw from a half-open `u64` range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn u64_in(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.next_u64() % (range.end - range.start)
    }

    /// Uniform draw from a half-open `u128` range (modulo bias is
    /// irrelevant at the spans used in tests).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn u128_in(&mut self, range: std::ops::Range<u128>) -> u128 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        let draw = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        range.start + draw % span
    }

    /// Uniform `f64` in `[0, 1)`: 53 random mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit_f64()
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = rng.usize_in(3..17);
            assert!((3..17).contains(&v));
            let u = rng.u64_in(10..12);
            assert!((10..12).contains(&u));
            let w = rng.u128_in(0..1000);
            assert!(w < 1000);
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
            let g = rng.f64_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&g));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = Rng::new(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.usize_in(0..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn seed_env_parsing() {
        // The env var is process-global; exercise every branch in one test
        // to avoid racing parallel test threads on it.
        std::env::remove_var("TCE_TEST_SEED");
        assert_eq!(seed_from_env(7), 7);
        std::env::set_var("TCE_TEST_SEED", "123");
        assert_eq!(seed_from_env(7), 123);
        std::env::set_var("TCE_TEST_SEED", " 0xBEEF ");
        assert_eq!(seed_from_env(7), 0xBEEF);
        std::env::set_var("TCE_TEST_SEED", "not-a-number");
        assert_eq!(seed_from_env(7), 7);
        std::env::remove_var("TCE_TEST_SEED");
    }

    #[test]
    fn split_seed_decorrelates() {
        let a = split_seed(1);
        let b = split_seed(2);
        assert_ne!(a, b);
        assert_eq!(split_seed(1), a);
    }

    #[test]
    fn seed_guard_is_silent_without_panic() {
        let _g = SeedGuard::new("quiet", 42);
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut rng = Rng::new(11);
        let hits = (0..10_000).filter(|_| rng.bool_with(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!Rng::new(5).bool_with(0.0));
        assert!(Rng::new(5).bool_with(1.0 + 1e-9));
    }
}
