//! Sum-of-products tensor expressions — the input form of the synthesis
//! system.
//!
//! A statement is `LHS[out…] = Σ_{sum…} Σ_terms coeff · F₁ · F₂ · …` where
//! each factor is a tensor reference or a primitive function evaluation
//! (the paper's expensive integral computations `f1`, `f2`).  This is the
//! "essentially sum-of-products array expressions" notation of §4, produced
//! by the `tce-lang` parser and consumed by the algebraic-transformation
//! (operation-minimization) module.

use crate::index::{IndexSet, IndexSpace, IndexVar};
use crate::tensor::{TensorId, TensorTable};
use std::fmt;

/// A reference to a tensor with explicit index variables per dimension,
/// e.g. `A[a,c,i,k]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorRef {
    /// Which declared tensor.
    pub tensor: TensorId,
    /// Index variable bound to each dimension, in dimension order.
    pub indices: Vec<IndexVar>,
}

impl TensorRef {
    /// Construct a reference.
    pub fn new(tensor: TensorId, indices: Vec<IndexVar>) -> Self {
        Self { tensor, indices }
    }

    /// The set of index variables used (assumes no repeated variable —
    /// validated separately; diagonal references are rejected by `validate`).
    pub fn index_set(&self) -> IndexSet {
        IndexSet::from_vars(self.indices.iter().copied())
    }
}

/// Evaluation of an expensive primitive function, e.g. the integral
/// calculations `f1(c,e,b,k)` of paper §3, with a per-evaluation arithmetic
/// cost `C_i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncEval {
    /// Function name.
    pub name: String,
    /// Argument index variables.
    pub indices: Vec<IndexVar>,
    /// Arithmetic cost of one evaluation (the paper's `C_i`, "of the order
    /// of hundreds or a few thousand arithmetic operations").
    pub cost_per_eval: u64,
}

impl FuncEval {
    /// The set of argument variables.
    pub fn index_set(&self) -> IndexSet {
        IndexSet::from_vars(self.indices.iter().copied())
    }
}

/// One multiplicative factor of a product term.
#[derive(Debug, Clone, PartialEq)]
pub enum Factor {
    /// A stored tensor.
    Tensor(TensorRef),
    /// A function evaluation.
    Func(FuncEval),
}

impl Factor {
    /// Index variables used by the factor.
    pub fn index_set(&self) -> IndexSet {
        match self {
            Factor::Tensor(t) => t.index_set(),
            Factor::Func(f) => f.index_set(),
        }
    }

    /// Ordered index list.
    pub fn indices(&self) -> &[IndexVar] {
        match self {
            Factor::Tensor(t) => &t.indices,
            Factor::Func(f) => &f.indices,
        }
    }
}

/// A product of factors with a scalar coefficient.
#[derive(Debug, Clone, PartialEq)]
pub struct Product {
    /// Scalar multiplier (antisymmetrization produces ±1 coefficients).
    pub coeff: f64,
    /// The factors, in source order.
    pub factors: Vec<Factor>,
}

impl Product {
    /// Product with coefficient 1.
    pub fn of(factors: Vec<Factor>) -> Self {
        Self {
            coeff: 1.0,
            factors,
        }
    }

    /// Union of the factors' index variables.
    pub fn index_set(&self) -> IndexSet {
        self.factors
            .iter()
            .fold(IndexSet::EMPTY, |s, f| s.union(f.index_set()))
    }
}

/// One assignment statement `lhs = Σ_{sum} terms` (or `+=` when
/// `accumulate`).
///
/// **Summation convention**: the statement-level `sum` set binds the
/// summation variables for all terms, but each term sums only over the
/// bound variables *it actually uses* — exactly the per-term Σ convention
/// of quantum-chemistry formulas.  A term not mentioning a bound index is
/// **not** multiplied by that index's extent.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Target tensor reference.
    pub lhs: TensorRef,
    /// `true` for `+=`.
    pub accumulate: bool,
    /// Explicit summation indices.
    pub sum_indices: IndexSet,
    /// The summed product terms.
    pub terms: Vec<Product>,
}

impl Assignment {
    /// All index variables appearing in the statement.
    pub fn all_indices(&self) -> IndexSet {
        self.terms
            .iter()
            .fold(self.lhs.index_set(), |s, t| s.union(t.index_set()))
    }

    /// Check the statement against declarations:
    /// * every referenced variable is declared and matches the tensor's
    ///   dimension range;
    /// * no repeated variable within one reference (no implicit diagonals);
    /// * summation indices are disjoint from the LHS indices;
    /// * every term's variables ⊆ LHS ∪ summation indices (no free
    ///   variables).
    pub fn validate(&self, space: &IndexSpace, tensors: &TensorTable) -> Result<(), String> {
        let check_ref = |r: &TensorRef| -> Result<(), String> {
            let decl = tensors.get(r.tensor);
            if decl.dims.len() != r.indices.len() {
                return Err(format!(
                    "tensor `{}` has rank {}, referenced with {} indices",
                    decl.name,
                    decl.dims.len(),
                    r.indices.len()
                ));
            }
            let mut seen = IndexSet::EMPTY;
            for (pos, &v) in r.indices.iter().enumerate() {
                if (v.0 as usize) >= space.num_vars() {
                    return Err(format!("undeclared index variable in `{}`", decl.name));
                }
                if seen.contains(v) {
                    return Err(format!(
                        "repeated index `{}` in reference to `{}`",
                        space.var_name(v),
                        decl.name
                    ));
                }
                seen.insert(v);
                if space.range_of(v) != decl.dims[pos] {
                    return Err(format!(
                        "index `{}` has range `{}` but dimension {pos} of `{}` has range `{}`",
                        space.var_name(v),
                        space.range_name(space.range_of(v)),
                        decl.name,
                        space.range_name(decl.dims[pos])
                    ));
                }
            }
            Ok(())
        };

        check_ref(&self.lhs)?;
        let lhs_set = self.lhs.index_set();
        if !lhs_set.is_disjoint(self.sum_indices) {
            return Err("summation index also appears on the LHS".into());
        }
        let bound = lhs_set.union(self.sum_indices);
        for term in &self.terms {
            for factor in &term.factors {
                if let Factor::Tensor(r) = factor {
                    check_ref(r)?;
                }
                if !factor.index_set().is_subset(bound) {
                    return Err(
                        "term uses an index that is neither an output nor a summation index".into(),
                    );
                }
            }
        }
        Ok(())
    }

    /// Operation count of the *direct* (naive) translation: for each term,
    /// one perfect loop nest over `LHS ∪ term indices` performing
    /// `(#factors − 1)` multiplies and one add per iteration — the paper's
    /// `4·N¹⁰` for the §2 example.
    pub fn direct_op_count(&self, space: &IndexSpace) -> u128 {
        self.terms
            .iter()
            .map(|t| {
                let iters = space.iteration_points(self.lhs.index_set().union(t.index_set()));
                iters.saturating_mul(t.factors.len() as u128)
            })
            .fold(0u128, u128::saturating_add)
    }

    /// Render with declared names, e.g.
    /// `S[a,b,i,j] = sum[c,d,e,f,k,l] A[a,c,i,k]*B[b,e,f,l]`.
    pub fn display<'a>(
        &'a self,
        space: &'a IndexSpace,
        tensors: &'a TensorTable,
    ) -> AssignmentDisplay<'a> {
        AssignmentDisplay {
            stmt: self,
            space,
            tensors,
        }
    }
}

/// Helper returned by [`Assignment::display`].
pub struct AssignmentDisplay<'a> {
    stmt: &'a Assignment,
    space: &'a IndexSpace,
    tensors: &'a TensorTable,
}

impl fmt::Display for AssignmentDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let write_ref = |f: &mut fmt::Formatter<'_>, r: &TensorRef| -> fmt::Result {
            write!(f, "{}[", self.tensors.get(r.tensor).name)?;
            for (i, v) in r.indices.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", self.space.var_name(*v))?;
            }
            write!(f, "]")
        };
        write_ref(f, &self.stmt.lhs)?;
        write!(f, " {}= ", if self.stmt.accumulate { "+" } else { "" })?;
        if !self.stmt.sum_indices.is_empty() {
            write!(
                f,
                "sum[{}] ",
                self.space.set_to_string(self.stmt.sum_indices)
            )?;
        }
        for (ti, term) in self.stmt.terms.iter().enumerate() {
            if ti > 0 {
                write!(f, " + ")?;
            }
            if term.coeff != 1.0 {
                write!(f, "{}*", term.coeff)?;
            }
            for (fi, factor) in term.factors.iter().enumerate() {
                if fi > 0 {
                    write!(f, "*")?;
                }
                match factor {
                    Factor::Tensor(r) => write_ref(f, r)?,
                    Factor::Func(func) => {
                        write!(f, "{}(", func.name)?;
                        for (i, v) in func.indices.iter().enumerate() {
                            if i > 0 {
                                write!(f, ",")?;
                            }
                            write!(f, "{}", self.space.var_name(*v))?;
                        }
                        write!(f, ")")?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// A whole input program: declarations plus an ordered statement list.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Index ranges and variables.
    pub space: IndexSpace,
    /// Tensor declarations.
    pub tensors: TensorTable,
    /// Statements in source order.
    pub stmts: Vec<Assignment>,
}

impl Program {
    /// Validate every statement.
    pub fn validate(&self) -> Result<(), String> {
        for (_, decl) in self.tensors.iter() {
            decl.validate()?;
        }
        for (i, stmt) in self.stmts.iter().enumerate() {
            stmt.validate(&self.space, &self.tensors)
                .map_err(|e| format!("statement {i}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::TensorDecl;

    /// Build the §2 example: S_abij = Σ_cdefkl A_acik B_befl C_dfjk D_cdel.
    fn section2() -> (Program, Assignment) {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 10);
        let vars = space.add_vars("a b c d e f i j k l", n);
        let (a, b, c, d, e, f, i, j, k, l) = (
            vars[0], vars[1], vars[2], vars[3], vars[4], vars[5], vars[6], vars[7], vars[8],
            vars[9],
        );
        let mut tensors = TensorTable::new();
        let ta = tensors.add(TensorDecl::dense("A", vec![n; 4]));
        let tb = tensors.add(TensorDecl::dense("B", vec![n; 4]));
        let tc = tensors.add(TensorDecl::dense("C", vec![n; 4]));
        let td = tensors.add(TensorDecl::dense("D", vec![n; 4]));
        let ts = tensors.add(TensorDecl::dense("S", vec![n; 4]));
        let stmt = Assignment {
            lhs: TensorRef::new(ts, vec![a, b, i, j]),
            accumulate: false,
            sum_indices: IndexSet::from_vars([c, d, e, f, k, l]),
            terms: vec![Product::of(vec![
                Factor::Tensor(TensorRef::new(ta, vec![a, c, i, k])),
                Factor::Tensor(TensorRef::new(tb, vec![b, e, f, l])),
                Factor::Tensor(TensorRef::new(tc, vec![d, f, j, k])),
                Factor::Tensor(TensorRef::new(td, vec![c, d, e, l])),
            ])],
        };
        let prog = Program {
            space,
            tensors,
            stmts: vec![stmt.clone()],
        };
        (prog, stmt)
    }

    #[test]
    fn validates_section2() {
        let (prog, _) = section2();
        prog.validate().unwrap();
    }

    #[test]
    fn direct_cost_is_4_n10() {
        // Paper §2: "the total number of arithmetic operations required will
        // be 4 × N^10 if the range of each index a–l is N".
        let (prog, stmt) = section2();
        assert_eq!(stmt.direct_op_count(&prog.space), 4 * 10u128.pow(10));
    }

    #[test]
    fn display_roundtrips_shape() {
        let (prog, stmt) = section2();
        let s = format!("{}", stmt.display(&prog.space, &prog.tensors));
        assert_eq!(
            s,
            "S[a,b,i,j] = sum[c,d,e,f,k,l] A[a,c,i,k]*B[b,e,f,l]*C[d,f,j,k]*D[c,d,e,l]"
        );
    }

    #[test]
    fn rejects_rank_mismatch() {
        let (mut prog, _) = section2();
        prog.stmts[0].lhs.indices.pop();
        assert!(prog.validate().is_err());
    }

    #[test]
    fn rejects_free_variable() {
        let (mut prog, stmt) = section2();
        // Remove `l` from the summation set: term now has a free variable.
        let l = prog.space.var_by_name("l").unwrap();
        let mut s = stmt;
        s.sum_indices.remove(l);
        prog.stmts = vec![s];
        assert!(prog.validate().is_err());
    }

    #[test]
    fn rejects_sum_index_on_lhs() {
        let (mut prog, stmt) = section2();
        let a = prog.space.var_by_name("a").unwrap();
        let mut s = stmt;
        s.sum_indices.insert(a);
        prog.stmts = vec![s];
        assert!(prog.validate().is_err());
    }

    #[test]
    fn rejects_repeated_index_in_ref() {
        let (mut prog, stmt) = section2();
        let a = prog.space.var_by_name("a").unwrap();
        let mut s = stmt;
        if let Factor::Tensor(r) = &mut s.terms[0].factors[0] {
            r.indices[1] = a; // A[a,a,i,k]
        }
        prog.stmts = vec![s];
        assert!(prog.validate().is_err());
    }

    #[test]
    fn func_factor_display_and_sets() {
        let mut space = IndexSpace::new();
        let n = space.add_range("N", 4);
        let vs = space.add_vars("c e b k", n);
        let f1 = FuncEval {
            name: "f1".into(),
            indices: vs.clone(),
            cost_per_eval: 1000,
        };
        assert_eq!(f1.index_set().len(), 4);
        let p = Product::of(vec![Factor::Func(f1)]);
        assert_eq!(p.index_set().len(), 4);
    }

    #[test]
    fn coeff_display() {
        let (prog, mut stmt) = section2();
        stmt.terms[0].coeff = -1.0;
        let s = format!("{}", stmt.display(&prog.space, &prog.tensors));
        assert!(s.contains("-1*A[a,c,i,k]"));
    }
}
