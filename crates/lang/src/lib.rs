//! # tce-lang — the high-level specification language
//!
//! Front end of the synthesis system (paper §4): a small declarative
//! language for tensor contraction expressions with index-range, symmetry
//! and sparsity declarations.  [`compile`] takes source text to a validated
//! [`tce_ir::Program`] ready for the optimization pipeline.
//!
//! ```
//! let prog = tce_lang::compile("
//!     range N = 10;
//!     index i, j, k : N;
//!     tensor A(N, N); tensor B(N, N); tensor S(N, N);
//!     S[i,j] = sum[k] A[i,k] * B[k,j];
//! ").unwrap();
//! assert_eq!(prog.stmts.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lower;
pub mod parser;
pub mod token;
pub mod unparse;

pub use lower::lower;
pub use parser::parse;
pub use token::{lex, LangError};
pub use unparse::unparse;

/// Parse and lower in one step.
pub fn compile(src: &str) -> Result<tce_ir::Program, LangError> {
    lower(&parse(src)?)
}
