//! A minimal recursive-descent JSON reader — just enough to parse the
//! calibration profile (objects, arrays, numbers, strings, booleans,
//! null) without external dependencies.  Strings support the standard
//! escapes; numbers parse through `str::parse::<f64>`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, entries in source order.
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("invalid JSON at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .src
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.src.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .src
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) => {
                    // Copy a run of plain bytes (keeps UTF-8 intact).
                    let start = self.pos;
                    let mut end = self.pos;
                    while self.src.get(end).is_some_and(|&c| c != b'"' && c != b'\\') {
                        end += 1;
                    }
                    let run = std::str::from_utf8(&self.src[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(run);
                    self.pos = end;
                    let _ = b;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
        }
    }
}

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            src: src.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        if p.peek().is_some() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }

    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The entries of an object, in source order.
    pub fn entries(&self) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(entries) => Ok(entries),
            other => Err(format!("expected an object, got {other:?}")),
        }
    }

    /// This value as a finite number.
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(format!("expected a number, got {other:?}")),
        }
    }

    /// Member `key` as a number.
    pub fn get_f64(&self, key: &str) -> Result<f64, String> {
        self.get(key)
            .ok_or_else(|| format!("missing `{key}`"))?
            .as_f64()
            .map_err(|e| format!("`{key}`: {e}"))
    }

    /// Member `key` as a non-negative integer.
    pub fn get_u64(&self, key: &str) -> Result<u64, String> {
        let n = self.get_f64(key)?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Ok(n as u64)
        } else {
            Err(format!("`{key}` must be a non-negative integer, got {n}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc =
            Json::parse(r#"{"a": 1.5, "b": {"c": [1, 2, 3], "d": "x\ny"}, "e": true, "f": null}"#)
                .unwrap();
        assert_eq!(doc.get_f64("a").unwrap(), 1.5);
        assert_eq!(
            doc.get("b").unwrap().get("d"),
            Some(&Json::Str("x\ny".into()))
        );
        assert_eq!(
            doc.get("b").unwrap().get("c"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.0),
                Json::Num(3.0)
            ]))
        );
        assert_eq!(doc.get("e"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("f"), Some(&Json::Null));
    }

    #[test]
    fn scientific_notation_and_negatives() {
        let doc = Json::parse(r#"{"x": -2.5e-3, "y": 1e9}"#).unwrap();
        assert_eq!(doc.get_f64("x").unwrap(), -2.5e-3);
        assert_eq!(doc.get_f64("y").unwrap(), 1e9);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a": }"#).is_err());
        assert!(Json::parse(r#"{"a": 1} extra"#).is_err());
        assert!(Json::parse("nope").is_err());
        assert!(Json::parse(r#"{"a": 1 "b": 2}"#).is_err());
    }

    #[test]
    fn get_u64_validates_integrality() {
        let doc = Json::parse(r#"{"n": 3, "x": 3.5, "neg": -1}"#).unwrap();
        assert_eq!(doc.get_u64("n").unwrap(), 3);
        assert!(doc.get_u64("x").is_err());
        assert!(doc.get_u64("neg").is_err());
        assert!(doc.get_u64("missing").is_err());
    }
}
